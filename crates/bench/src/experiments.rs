//! The experiment runners E1–E16 (DESIGN.md §5). Each returns a printable
//! table; EXPERIMENTS.md records the output of the `experiments` binary.
//!
//! Workload construction is delegated to the scenario engine
//! (`hybrid_scenarios`): the shared helpers in
//! [`hybrid_scenarios::workloads`] and, for the scenario matrix (E16) and the
//! perf sweep, the named registry entries themselves.

use clique_sim::declared::DeclaredKssp;
use clique_sim::{Beta, SourceCapacity};
use hybrid_core::helpers::compute_helpers;
use hybrid_core::lower_bound_experiments::{run_diameter_lower_bound, run_kssp_lower_bound};
use hybrid_core::ruling_set::{ruling_set, verify};
use hybrid_core::session::{Session, SessionConfig};
use hybrid_core::solver::{
    solve, ApspVariant, DiameterCorollary, KsspCorollary, Query, SsspVariant,
};
use hybrid_core::token_routing::{mu_for, route_tokens, RoutingRates, Token};
use hybrid_graph::apsp::apsp;
use hybrid_graph::dijkstra::shortest_path_diameter;
use hybrid_graph::generators::{cycle, grid, path_with_heavy_hub};
use hybrid_graph::skeleton::{count_coverage_violations, count_distance_violations};
use hybrid_graph::{Distance, Graph, NodeId, INFINITY};
use hybrid_scenarios::workloads::{er, random_nodes};
use hybrid_scenarios::{
    registry, run_scenario_traced, run_scenario_with, run_scenarios_with, Engine, FaultPlan,
    Scenario, ScenarioReport,
};
use hybrid_sim::{HybridConfig, HybridNet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::{f3, Table};

/// Experiment scale: `Small` for CI/benches, `Full` for the recorded tables,
/// `Large` for the n=3200 sweeps (compact-layout stress runs; correctness is
/// sample-verified there to keep one distance matrix in memory at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast sizes for benches and smoke runs.
    Small,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
    /// The extended n≤3200 sweeps (`experiments --large`).
    Large,
}

impl Scale {
    fn pick<T: Copy>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full | Scale::Large => full,
        }
    }

    fn pick3<T: Copy>(self, small: T, full: T, large: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
            Scale::Large => large,
        }
    }
}

/// The E2 workload graph, built from the registry's `e2-er` scenario so the
/// experiment tables and the perf sweep benchmark the exact same instance —
/// which is also bit-identical to the pre-registry `er(n, 12.0, 4, 3)`
/// instances recorded in `BENCH_apsp.json`, keeping the perf trajectory
/// comparable across PRs.
fn e2_graph(n: usize) -> Graph {
    hybrid_scenarios::find("e2-er").expect("registered").graph(n)
}

fn ratio_stats(est: &[Vec<Distance>], exact: &[Vec<Distance>]) -> (f64, f64) {
    let (mut worst, mut sum, mut cnt) = (1.0f64, 0.0f64, 0u64);
    for (row, erow) in est.iter().zip(exact) {
        for (&a, &e) in row.iter().zip(erow) {
            if e == 0 || e == INFINITY || a == INFINITY {
                continue;
            }
            let r = a as f64 / e as f64;
            worst = worst.max(r);
            sum += r;
            cnt += 1;
        }
    }
    (worst, if cnt > 0 { sum / cnt as f64 } else { 1.0 })
}

/// E1 — Theorem 2.2: token routing rounds vs the `Õ(K/n + √k_S + √k_R)` shape.
pub fn e1_token_routing(scale: Scale) -> Table {
    let mut t = Table::new(
        "E1: token routing (Thm 2.2) — rounds vs Õ(K/n + √kS + √kR)",
        &["n", "|S|", "|R|", "kS", "kR", "K", "rounds", "K/n+√kS+√kR"],
    );
    let sizes: &[usize] = scale.pick(&[150, 300], &[200, 400, 800, 1600]);
    for &n in sizes {
        let g = er(n, 10.0, 1, 7);
        let s_count = (n as f64).sqrt() as usize;
        let senders = random_nodes(n, s_count, 1);
        let receivers = random_nodes(n, s_count, 2);
        let per = (n as f64).sqrt() as usize;
        let mut rng = StdRng::seed_from_u64(3);
        let mut tokens = Vec::new();
        for &s in &senders {
            for i in 0..per {
                let r = receivers[rng.gen_range(0..receivers.len())];
                tokens.push(Token::new(s, r, i as u32, 0u64));
            }
        }
        let k_total = tokens.len();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let routed = route_tokens(
            &mut net,
            tokens,
            &senders,
            &receivers,
            RoutingRates {
                p_s: senders.len() as f64 / n as f64,
                p_r: receivers.len() as f64 / n as f64,
            },
            11,
            "tr",
        )
        .expect("routing");
        let ks = per;
        let kr = k_total.div_ceil(receivers.len().max(1));
        let pred = k_total as f64 / n as f64 + (ks as f64).sqrt() + (kr as f64).sqrt();
        t.row(vec![
            n.to_string(),
            senders.len().to_string(),
            receivers.len().to_string(),
            ks.to_string(),
            kr.to_string(),
            k_total.to_string(),
            routed.rounds.to_string(),
            f3(pred),
        ]);
    }
    t
}

/// E2 — Theorem 1.1 vs the SODA'20 baseline: exact APSP round scaling.
///
/// At [`Scale::Large`] (n up to 3200) correctness is verified on 16 sampled
/// Dijkstra rows instead of a third full `n × n` matrix, so at most one
/// distance matrix beyond the answers is ever resident — the sweep fits the
/// container at n=3200.
pub fn e2_apsp(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2: exact APSP (Thm 1.1, Õ(√n)) vs Augustine et al. baseline (Õ(n^2/3))",
        &["n", "thm1.1 rounds", "soda20 rounds", "√n·ln n", "n^2/3·ln n", "both exact"],
    );
    let sizes: &[usize] = scale.pick3(&[200, 400], &[300, 500, 800, 1200], &[800, 1600, 3200]);
    for &n in sizes {
        let g = e2_graph(n);
        let mut na = HybridNet::new(&g, HybridConfig::default());
        let a = solve(&mut na, &Query::apsp().xi(1.5).build().expect("valid"), 5).expect("apsp");
        let mut nb = HybridNet::new(&g, HybridConfig::default());
        let soda = Query::apsp().variant(ApspVariant::Soda20).xi(1.5).build().expect("valid");
        let b = solve(&mut nb, &soda, 5).expect("apsp baseline");
        let (ad, bd) = (a.distances().expect("matrix"), b.distances().expect("matrix"));
        let mut ok = true;
        if scale == Scale::Large {
            // Sampled verification: 16 deterministic source rows.
            let sources: Vec<NodeId> = (0..16).map(|i| NodeId::new(i * (n / 16).max(1))).collect();
            for &u in &sources {
                let truth = hybrid_graph::dijkstra::dijkstra(&g, u);
                for v in g.nodes() {
                    ok &= ad.get(u, v) == truth.dist(v) && bd.get(u, v) == truth.dist(v);
                }
            }
        } else {
            let exact = apsp(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    ok &= ad.get(u, v) == exact.get(u, v) && bd.get(u, v) == exact.get(u, v);
                }
            }
        }
        let ln = (n as f64).ln();
        t.row(vec![
            n.to_string(),
            a.rounds.to_string(),
            b.rounds.to_string(),
            f3((n as f64).sqrt() * ln),
            f3((n as f64).powf(2.0 / 3.0) * ln),
            ok.to_string(),
        ]);
    }
    t
}

/// E3 — Theorem 1.2 (Corollaries 4.6–4.8): k-SSP approximation quality and
/// runtime.
pub fn e3_kssp(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3: k-SSP (Thm 1.2) — measured approximation vs guarantee",
        &["alg", "graph", "k", "rounds", "max ratio", "mean ratio", "guarantee"],
    );
    let n = scale.pick(150, 400);
    let side = (n as f64).sqrt() as usize;
    // The cycle has D = n/2 ≫ ηh, so the skeleton path (and its approximation
    // error) is actually exercised; on the small-diameter families the local
    // horizon already covers everything and ratios sit at 1.0.
    let cases: Vec<(&str, Graph, bool)> = vec![
        ("grid(unw)", grid(side, side, 1).expect("grid"), true),
        ("cycle(unw)", cycle(n, 1).expect("cycle"), true),
        ("er(w)", er(n, 10.0, 6, 9), false),
    ];
    for (gname, g, _unweighted) in &cases {
        let exact = apsp(g);
        // One serving session per graph: the three corollaries share the
        // session's prepared skeletons (4.6/4.7 sample at the same exponent)
        // with bit-identical reports.
        let session = Session::new(g, SessionConfig::new(31)).expect("session");
        for (cor, k, eps) in [
            (KsspCorollary::Cor46, 3usize, 0.5),
            (KsspCorollary::Cor47, 12, 0.5),
            (KsspCorollary::Cor48, 12, 0.25),
        ] {
            let sources = random_nodes(g.len(), k, 21);
            let exact_rows: Vec<Vec<Distance>> =
                sources.iter().map(|&s| exact.row(s).to_vec()).collect();
            let query =
                Query::kssp(cor).sources(sources.clone()).eps(eps).xi(1.5).build().expect("valid");
            let out = session.solve(&query).expect("kssp");
            let (_, est) = out.distance_rows().expect("rows");
            let (worst, mean) = ratio_stats(est, &exact_rows);
            t.row(vec![
                format!("cor{}", cor.number()),
                gname.to_string(),
                sources.len().to_string(),
                out.rounds.to_string(),
                f3(worst),
                f3(mean),
                f3(out.guarantee.factor()),
            ]);
        }
    }
    t
}

/// E4 — Theorem 1.3: exact SSSP `Õ(n^{2/5})` vs the `Θ(SPD)` local baseline
/// (and the `√SPD` reference of \[3\]).
pub fn e4_sssp(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4: exact SSSP (Thm 1.3, Õ(n^2/5)) on high-SPD graphs",
        &["n", "SPD", "thm1.3 rounds", "local BF rounds", "√SPD ref", "exact"],
    );
    let sizes: &[usize] = scale.pick(&[600], &[800, 1600, 3200]);
    for &n in sizes {
        let g = path_with_heavy_hub(n, (n as u64) * 2).expect("hub graph");
        let spd = if n <= 800 { shortest_path_diameter(&g) } else { (n - 2) as u64 };
        let source = NodeId::new(0);
        let mut na = HybridNet::new(&g, HybridConfig::default());
        // ξ = 3: the Lemma C.1 failure probability is ≈ n^{-2}; the "exact"
        // column reports the Monte Carlo outcome.
        let a =
            solve(&mut na, &Query::sssp(source).xi(3.0).build().expect("valid"), 3).expect("sssp");
        let mut nb = HybridNet::new(&g, HybridConfig::default());
        let bf = Query::sssp(source).variant(SsspVariant::LocalBellmanFord).build().expect("valid");
        let b = solve(&mut nb, &bf, 3).expect("local bf");
        t.row(vec![
            n.to_string(),
            spd.to_string(),
            a.rounds.to_string(),
            b.rounds.to_string(),
            f3((spd as f64).sqrt()),
            (a.distance_row().expect("row").1 == b.distance_row().expect("row").1).to_string(),
        ]);
    }
    t
}

/// E5 — Theorem 1.4 (Corollaries 5.2, 5.3): diameter approximation.
pub fn e5_diameter(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5: diameter (Thm 1.4) — (3/2+ε) in Õ(n^1/3), (1+ε) in Õ(n^0.397)",
        &["n", "D", "alg", "estimate", "ratio", "guarantee", "rounds"],
    );
    let sizes: &[usize] = scale.pick(&[300, 600], &[300, 600, 1200, 2400]);
    for &n in sizes {
        let g = cycle(n, 1).expect("cycle");
        let d = (n / 2) as u64;
        // Both corollaries serve from one session over the cycle instance.
        let session =
            Session::new(&g, SessionConfig { xi: 1.2, ..SessionConfig::new(5) }).expect("session");
        for cor in [DiameterCorollary::Cor52, DiameterCorollary::Cor53] {
            let query = Query::diameter(cor).eps(0.5).xi(1.2).build().expect("valid");
            let out = session.solve(&query).expect("diameter");
            let estimate = out.diameter_estimate().expect("estimate");
            t.row(vec![
                n.to_string(),
                d.to_string(),
                format!("cor{}", cor.number()),
                estimate.to_string(),
                f3(estimate as f64 / d as f64),
                f3(out.guarantee.factor()),
                out.rounds.to_string(),
            ]);
        }
    }
    t
}

/// E6 — Theorem 1.5 / Figure 1: the k-SSP information bottleneck.
pub fn e6_kssp_lower_bound(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6: k-SSP lower bound (Thm 1.5, Fig. 1) — entropy vs cut capacity",
        &[
            "k",
            "L",
            "n",
            "entropy bits",
            "cut bits/rd",
            "predicted LB",
            "measured",
            "cut msgs",
            "b decodes",
        ],
    );
    let ks: &[usize] = scale.pick(&[16, 36], &[16, 64, 144, 256]);
    for &k in ks {
        let l = (k as f64).sqrt().ceil() as usize;
        let rep = run_kssp_lower_bound(6 * l, l, k, 0.5, 5).expect("lb run");
        t.row(vec![
            k.to_string(),
            l.to_string(),
            rep.n.to_string(),
            f3(rep.entropy_bits),
            f3(rep.cut_capacity_bits_per_round),
            f3(rep.predicted_round_lb),
            rep.measured_rounds.to_string(),
            rep.measured_cut_messages.to_string(),
            rep.b_decodes_assignment.to_string(),
        ]);
    }
    t
}

/// E7 — Theorem 1.6 / Figure 2: the diameter gap and the implied bound.
pub fn e7_diameter_lower_bound(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7: diameter lower bound (Thm 1.6, Fig. 2) — set-disjointness gap",
        &[
            "k",
            "ell",
            "W",
            "instance",
            "n",
            "diameter",
            "lemma",
            "implied LB",
            "approx est",
            "cut msgs",
        ],
    );
    let ks: &[usize] = scale.pick(&[3, 5], &[4, 8, 12]);
    for &k in ks {
        for disjoint in [true, false] {
            for w in [1u64, 16] {
                let rep = run_diameter_lower_bound(k, 4, w, disjoint, 0.5, 11).expect("lb");
                assert!(rep.true_diameter <= rep.lemma_diameter);
                t.row(vec![
                    k.to_string(),
                    rep.ell.to_string(),
                    w.to_string(),
                    if disjoint { "disjoint" } else { "intersect" }.to_string(),
                    rep.n.to_string(),
                    rep.true_diameter.to_string(),
                    rep.lemma_diameter.to_string(),
                    f3(rep.implied_round_lb),
                    rep.approx_estimate.to_string(),
                    rep.cut_messages.to_string(),
                ]);
            }
        }
    }
    t
}

/// E8 — Lemma 2.2: helper-set invariants.
pub fn e8_helper_sets(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8: helper sets (Lemma 2.2) — size / radius / membership invariants",
        &["n", "|W|", "mu", "min |H_w|", "max radius", "4µ⌈log n⌉", "max member", "rounds"],
    );
    let n = scale.pick(200, 600);
    let g = er(n, 8.0, 1, 13);
    let log = hybrid_graph::graph::log2_ceil(n);
    for mu in [2usize, 4, 8] {
        let w = random_nodes(n, n / 10, 17);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let hs = compute_helpers(&mut net, &w, mu, 19, "helpers");
        let min_size = w.iter().map(|&x| hs.helpers(x).len()).min().unwrap_or(0);
        let mut max_radius = 0u64;
        for &x in &w {
            let d = hybrid_graph::bfs::bfs(&g, x);
            for &h in hs.helpers(x) {
                max_radius = max_radius.max(d.dist(h));
            }
        }
        t.row(vec![
            n.to_string(),
            w.len().to_string(),
            mu.to_string(),
            min_size.to_string(),
            max_radius.to_string(),
            (4 * mu * log).to_string(),
            hs.max_membership().to_string(),
            net.rounds().to_string(),
        ]);
    }
    t
}

/// E9 — Lemma 2.1: ruling-set contract and round cost.
pub fn e9_ruling_sets(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9: ruling sets (Lemma 2.1) — (2µ+1, 2µ⌈log n⌉) in O(µ log n) rounds",
        &["n", "mu", "|R|", "min pairwise", "α", "max dominate", "β", "rounds"],
    );
    let n = scale.pick(200, 800);
    let g = er(n, 6.0, 1, 23);
    for mu in [1usize, 2, 4, 8] {
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let rs = ruling_set(&mut net, mu, "rs");
        let (min_pair, max_dom) = verify(&g, &rs);
        t.row(vec![
            n.to_string(),
            mu.to_string(),
            rs.rulers.len().to_string(),
            if rs.rulers.len() > 1 { min_pair.to_string() } else { "-".into() },
            rs.alpha.to_string(),
            max_dom.to_string(),
            rs.beta.to_string(),
            net.rounds().to_string(),
        ]);
    }
    t
}

/// E10 — Lemmas C.1 / C.2: skeleton coverage and distance preservation.
pub fn e10_skeletons(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10: skeletons (Lemmas C.1/C.2) — coverage + distance preservation",
        &["n", "x exp", "|V_S|", "h", "coverage viol.", "distance viol."],
    );
    let n = scale.pick(200, 500);
    let g = er(n, 8.0, 5, 29);
    let mut rng = StdRng::seed_from_u64(31);
    for x_exp in [1.0 / 3.0, 0.5, 2.0 / 3.0] {
        let x_lemma = (n as f64).powf(1.0 - x_exp);
        let params = hybrid_graph::skeleton::SkeletonParams::scaled(x_lemma, 1.5);
        let skel =
            hybrid_graph::skeleton::Skeleton::build(&g, params, &[], &mut rng).expect("skeleton");
        let pairs: Vec<(NodeId, NodeId)> = (0..40)
            .map(|i| (NodeId::new((i * 13) % n), NodeId::new((i * 31 + 7) % n)))
            .filter(|(a, b)| a != b)
            .collect();
        let cov = count_coverage_violations(&g, skel.nodes(), skel.h(), &pairs);
        let dist = count_distance_violations(&g, &skel);
        t.row(vec![
            n.to_string(),
            f3(x_exp),
            skel.len().to_string(),
            skel.h().to_string(),
            cov.to_string(),
            dist.to_string(),
        ]);
    }
    t
}

/// E11 — Lemma D.2 / Lemma 2.3: receive-load histogram during token routing.
pub fn e11_congestion(scale: Scale) -> Table {
    let mut t = Table::new(
        "E11: congestion (Lemma D.2) — per-round receive loads stay O(log n)",
        &["n", "K", "recv cap", "max recv load", "p99 load", "stretched"],
    );
    let sizes: &[usize] = scale.pick(&[200], &[200, 500, 1000]);
    for &n in sizes {
        let g = er(n, 10.0, 1, 37);
        let senders = random_nodes(n, n / 8, 41);
        let receivers = random_nodes(n, n / 8, 43);
        let mut rng = StdRng::seed_from_u64(47);
        let mut tokens = Vec::new();
        for &s in &senders {
            for i in 0..12u32 {
                let r = receivers[rng.gen_range(0..receivers.len())];
                tokens.push(Token::new(s, r, i, 0u8));
            }
        }
        let k = tokens.len();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        route_tokens(
            &mut net,
            tokens,
            &senders,
            &receivers,
            RoutingRates { p_s: 0.125, p_r: 0.125 },
            53,
            "tr",
        )
        .expect("routing");
        let m = net.metrics();
        let hist = &m.recv_load_hist;
        let total: u64 = hist.iter().sum();
        let mut acc = 0u64;
        let mut p99 = 0usize;
        for (load, &c) in hist.iter().enumerate() {
            acc += c;
            if acc as f64 >= 0.99 * total as f64 {
                p99 = load;
                break;
            }
        }
        t.row(vec![
            n.to_string(),
            k.to_string(),
            net.recv_cap().to_string(),
            m.max_recv_load.to_string(),
            p99.to_string(),
            m.stretched_exchanges.to_string(),
        ]);
    }
    t
}

/// E12 — Corollary 4.1: HYBRID cost of one simulated CLIQUE round vs
/// `Õ(n^{2x-1} + n^{x/2})`.
pub fn e12_clique_sim(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12: CLIQUE-on-skeleton (Cor 4.1) — one clique round in Õ(n^{2x-1}+n^{x/2})",
        &["n", "x", "|S|", "hybrid rounds/clique round", "n^{2x-1}+n^{x/2}"],
    );
    let n = scale.pick(300, 800);
    let g = er(n, 10.0, 3, 59);
    for x in [0.4f64, 0.5, 0.6, 2.0 / 3.0] {
        // A declared plugin with T_A = 1 makes the report's measured
        // full-round cost the quantity of interest.
        let alg =
            DeclaredKssp::custom("probe", SourceCapacity::Apsp, 0.0, 1.0, 1.0, Beta::Zero, None);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let skel = hybrid_core::skeleton_ops::compute_skeleton(&mut net, x, 1.0, &[], 61, "s")
            .expect("skeleton");
        let before = net.rounds();
        let sources = vec![NodeId::new(0)];
        let (_, rep) = hybrid_core::clique_on_skeleton::simulate_kssp_on_skeleton(
            &mut net, &skel, &alg, &sources, 67, "cs",
        )
        .expect("clique sim");
        let _ = before;
        let nf = n as f64;
        let pred = nf.powf(2.0 * x - 1.0) + nf.powf(x / 2.0);
        t.row(vec![
            n.to_string(),
            f3(x),
            skel.len().to_string(),
            rep.hybrid_rounds.to_string(),
            f3(pred),
        ]);
    }
    t
}

/// E13 — ablation: the skeleton constant `ξ` (correctness/cost trade-off the
/// w.h.p. Lemma C.1 constant controls).
pub fn e13_xi_ablation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E13 (ablation): skeleton constant ξ — h, rounds, exactness of Thm 1.1 APSP",
        &["n", "xi", "|V_S|", "h", "rounds", "exact", "fallbacks"],
    );
    let n = scale.pick(200, 400);
    let g = er(n, 10.0, 4, 71);
    let exact = apsp(&g);
    for xi in [0.25f64, 0.5, 1.0, 1.5, 2.5] {
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = solve(&mut net, &Query::apsp().xi(xi).build().expect("valid"), 73).expect("apsp");
        let dist = out.distances().expect("matrix");
        let mut ok = true;
        for u in g.nodes() {
            for v in g.nodes() {
                ok &= dist.get(u, v) == exact.get(u, v);
            }
        }
        t.row(vec![
            n.to_string(),
            f3(xi),
            out.skeleton_size.to_string(),
            out.h.to_string(),
            out.rounds.to_string(),
            ok.to_string(),
            out.coverage_fallbacks.to_string(),
        ]);
    }
    t
}

/// E14 — ablation: the helper budget µ (none / rebalanced √k/log n / the
/// paper's √k) on a fixed heavy routing workload.
pub fn e14_mu_ablation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E14 (ablation): helper budget µ — setup vs routing trade-off (Thm 2.2)",
        &["n", "kR", "policy", "µ", "setup rounds", "route rounds", "total"],
    );
    let n = scale.pick(300, 800);
    let g = er(n, 10.0, 1, 79);
    let receivers = random_nodes(n, (n as f64).sqrt() as usize, 83);
    let senders: Vec<NodeId> = g.nodes().collect();
    // Every node sends one token to every receiver: kR = n (the APSP shape).
    let make_tokens = || -> Vec<Token<u8>> {
        let mut tokens = Vec::new();
        for &s in &senders {
            for (i, &r) in receivers.iter().enumerate() {
                if s != r {
                    tokens.push(Token::new(s, r, i as u32, 0));
                }
            }
        }
        tokens
    };
    let k_r = senders.len();
    let policies: Vec<(&str, usize)> = vec![
        ("µ=1 (no helpers)", 1),
        ("µ=√k/log n (default)", mu_for(k_r, receivers.len() as f64 / n as f64, n)),
        ("µ=√k (paper)", ((k_r as f64).sqrt() as usize).max(1)),
    ];
    for (name, mu) in policies {
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let session = hybrid_core::token_routing::RoutingSession::establish_with_budgets(
            &mut net, &senders, &receivers, 1, mu, 89, "tr",
        )
        .expect("session");
        let setup = net.rounds();
        let routed = session.route(&mut net, make_tokens(), "tr").expect("route");
        t.row(vec![
            n.to_string(),
            k_r.to_string(),
            name.to_string(),
            mu.to_string(),
            setup.to_string(),
            routed.rounds.to_string(),
            net.rounds().to_string(),
        ]);
    }
    t
}

/// E15 — ablation: the global bandwidth `γ` (the (λ, γ) spectrum of hybrid
/// networks, footnote 2): scaling the NCC message budget.
pub fn e15_gamma_ablation(scale: Scale) -> Table {
    let mut t = Table::new(
        "E15 (ablation): global budget γ — APSP rounds vs NCC cap scaling",
        &["n", "cap factor", "send cap", "rounds", "exact"],
    );
    let n = scale.pick(200, 400);
    let g = er(n, 10.0, 4, 97);
    let exact = apsp(&g);
    for factor in [0.5f64, 1.0, 2.0, 4.0] {
        let cfg = HybridConfig {
            send_cap_factor: factor,
            recv_cap_factor: 4.0 * factor,
            overflow: hybrid_sim::OverflowPolicy::Stretch,
        };
        let mut net = HybridNet::new(&g, cfg);
        let out =
            solve(&mut net, &Query::apsp().xi(1.5).build().expect("valid"), 101).expect("apsp");
        let dist = out.distances().expect("matrix");
        let mut ok = true;
        for u in g.nodes() {
            for v in g.nodes() {
                ok &= dist.get(u, v) == exact.get(u, v);
            }
        }
        t.row(vec![
            n.to_string(),
            f3(factor),
            net.send_cap().to_string(),
            out.rounds.to_string(),
            ok.to_string(),
        ]);
    }
    t
}

/// Times the E2 APSP workload (Theorem 1.1, the SODA'20 baseline, and the
/// sequential reference APSP) and returns machine-readable records for
/// `BENCH_apsp.json` — the perf trajectory future PRs compare against.
/// Solver-backed records carry the canonical query label emitted by the new
/// API; the measured instances and algorithms are unchanged from the pre-facade
/// sweeps (pinned by `bench_apsp_json_pins_instances_and_algorithms`).
pub fn bench_apsp_records(scale: Scale) -> Vec<crate::json::BenchRecord> {
    use crate::json::BenchRecord;
    let sizes: &[usize] = scale.pick3(&[200, 400], &[300, 500, 800, 1200], &[800, 1600, 3200]);
    // Min-of-N interleaved runs (the documented methodology): each benchmark
    // is timed `RUNS` times and the minimum recorded, filtering scheduler
    // noise without changing the measured workload.
    const RUNS: usize = 3;
    let threads = hybrid_sim::par::round_threads();
    let thm11 = Query::apsp().xi(1.5).build().expect("valid");
    let soda20 = Query::apsp().variant(ApspVariant::Soda20).xi(1.5).build().expect("valid");
    let mut records = Vec::new();
    for &n in sizes {
        let g = e2_graph(n);
        records.push(BenchRecord::measure_min_of("reference_apsp", n, RUNS, || {
            let m = apsp(&g);
            assert!(!m.is_empty());
            0
        }));
        records.push(
            BenchRecord::measure_min_of("thm11_apsp", n, RUNS, || {
                let mut net = HybridNet::new(&g, HybridConfig::default());
                solve(&mut net, &thm11, 5).expect("apsp").rounds
            })
            .with_query(thm11.label())
            .with_threads(threads),
        );
        records.push(
            BenchRecord::measure_min_of("soda20_apsp", n, RUNS, || {
                let mut net = HybridNet::new(&g, HybridConfig::default());
                solve(&mut net, &soda20, 5).expect("apsp baseline").rounds
            })
            .with_query(soda20.label())
            .with_threads(threads),
        );
    }
    records
}

/// The standard mixed serving batch: 8 distinct paper queries (both APSP
/// variants, exact and approximate SSSP, two k-SSP corollaries, both
/// diameter corollaries, all at the session's ξ = 1.5) cycled to length `q`
/// — the repeat-heavy shape of serving traffic on one graph.
pub fn mixed_query_batch(q: usize) -> Vec<Query> {
    let base = [
        Query::apsp().xi(1.5).build().expect("valid"),
        Query::apsp().variant(ApspVariant::Soda20).xi(1.5).build().expect("valid"),
        Query::sssp(NodeId::new(0)).xi(1.5).build().expect("valid"),
        Query::sssp(NodeId::new(1))
            .variant(SsspVariant::ApproxSoda20 { eps: 0.5 })
            .xi(1.5)
            .build()
            .expect("valid"),
        Query::kssp(KsspCorollary::Cor46)
            .random_sources(2)
            .eps(0.5)
            .xi(1.5)
            .build()
            .expect("valid"),
        Query::kssp(KsspCorollary::Cor47)
            .random_sources(8)
            .eps(0.5)
            .xi(1.5)
            .build()
            .expect("valid"),
        Query::diameter(DiameterCorollary::Cor52).eps(0.5).xi(1.5).build().expect("valid"),
        Query::diameter(DiameterCorollary::Cor53).eps(0.5).xi(1.5).build().expect("valid"),
    ];
    (0..q).map(|i| base[i % base.len()].clone()).collect()
}

/// Serving-throughput sweep for `BENCH_throughput.json` (schema
/// [`crate::json::SCHEMA_THROUGHPUT`]): a q=32 mixed-query batch on the E2
/// graph, timed cold (32 independent `solve` calls on fresh nets) and
/// through one serving [`Session`]. Records queries/sec for both and the
/// amortized-vs-cold wall-clock ratio on the session record — the headline
/// amortization number, measured in-process so both sides see the same
/// machine noise. Both sides serve *sequentially* (the session side is a
/// plain `solve` loop, not `solve_batch`), so the recorded ratio isolates
/// preprocessing amortization and cannot be inflated by worker threading on
/// a multi-core host.
pub fn bench_throughput_records(scale: Scale) -> Vec<crate::json::BenchRecord> {
    use crate::json::BenchRecord;
    // The recorded instances are the E2 n=200/400 graphs of the perf
    // trajectory (small = the recorded sweep, as for `BENCH_apsp.json`).
    let sizes: &[usize] = scale.pick3(&[200, 400], &[200, 400], &[400, 800]);
    const BATCH: usize = 32;
    let seed = 7u64;
    let mut records = Vec::new();
    for &n in sizes {
        let g = e2_graph(n);
        let queries = mixed_query_batch(BATCH);
        let cold = BenchRecord::measure("mixed32_cold", n, || {
            let mut rounds = 0;
            for q in &queries {
                let mut net = HybridNet::new(&g, HybridConfig::default());
                rounds += solve(&mut net, q, seed).expect("cold solve").rounds;
            }
            rounds
        });
        let session = Session::new(&g, SessionConfig::new(seed)).expect("session");
        let warm = BenchRecord::measure("mixed32_session", n, || {
            let mut rounds = 0;
            for q in &queries {
                rounds += session.solve(q).expect("session solve").rounds;
            }
            rounds
        });
        assert_eq!(cold.rounds, warm.rounds, "session must bill identical simulated rounds");
        let ratio = cold.wall_ns as f64 / warm.wall_ns.max(1) as f64;
        let qps = |ns: u128| BATCH as f64 / (ns as f64 / 1e9);
        let cold_qps = qps(cold.wall_ns);
        let warm_qps = qps(warm.wall_ns);
        records.push(cold.with_throughput("e2-er", BATCH, cold_qps));
        records.push(warm.with_throughput("e2-er", BATCH, warm_qps).with_ratio(ratio));
    }
    records
}

/// Converts one load-generator report into a `serving-v2` record.
fn serving_record(n: usize, r: &hybrid_serve::LoadReport) -> crate::json::BenchRecord {
    crate::json::BenchRecord {
        bench: r.name.clone(),
        n,
        wall_ns: u128::from(r.wall_ns),
        rounds: r.rounds_total,
        peak_rss_bytes: crate::json::peak_rss_bytes(),
        ..crate::json::BenchRecord::default()
    }
    .with_serving(crate::json::ServingFields {
        clients: r.clients,
        issued: r.issued,
        served: r.served,
        shed: r.shed,
        failed: r.failed,
        p50_ns: r.p50_ns,
        p95_ns: r.p95_ns,
        p99_ns: r.p99_ns,
        qps: r.qps,
        shed_rate: r.shed_rate,
        cache_hits: r.stats.session_hits,
        cache_admitted: r.stats.sessions_admitted,
        cache_evicted: r.stats.sessions_evicted,
        cache_bytes: r.stats.session_bytes as u64,
        verified: r.stats.verified,
        mismatches: r.stats.mismatches,
        batches: r.stats.batches,
        max_batch: r.stats.max_batch,
        retries: r.retries,
        deadline_shed: r.deadline_shed,
        breaker_rejected: r.breaker_rejected,
        breaker_opens: r.stats.breaker_opens,
        breaker_probes: r.stats.breaker_probes,
        quarantined: r.stats.quarantined,
        degraded_served: r.degraded_served,
    })
}

/// Closed-loop serving sweep for `BENCH_serving.json` (schema
/// [`crate::json::SCHEMA_SERVING`]): registry workloads driven through the
/// multi-tenant broker by the deterministic load generator. Three workloads:
///
/// * `serve-mixed` — two tenants with comfortable queue depth and a generous
///   session budget over two registry graphs (`e2-er`, `sparse-grid`); the
///   cache-friendly steady state (high hit rate, no shedding expected).
/// * `serve-tight` — three depth-1 tenants under a byte budget sized to
///   ~1.5 sessions, probed from a real session's `prepared_bytes`; admission
///   pressure and LRU eviction churn on the same request mix. Clients retry
///   overloads with deterministic backoff.
/// * `serve-chaos` — the fault-tolerant serving path end to end: a healthy
///   tenant, a lossy+corrupting tenant (drop and bit-flip fault plans run
///   cold through the reliable layer), a crashing tenant whose answers come
///   back explicitly `degraded=`, and a panicking tenant guarded by a
///   circuit breaker, all under tight deadline budgets.
///
/// Every response the broker serves is verified bit-identical to a cold
/// solve online (the chaos referee replays the same fault plan);
/// `mismatches` must be 0, failures must be exactly the contained panics,
/// and every issued request must be accounted
/// served/shed/deadline-shed/breaker-rejected/failed — the smoke driver
/// exits non-zero otherwise.
pub fn bench_serving_records(scale: Scale) -> Vec<crate::json::BenchRecord> {
    use hybrid_graph::NodeId;
    use hybrid_serve::{run_load, Broker, BrokerConfig, GraphCatalog, LoadSpec, TenantConfig};
    use hybrid_sim::{Crash, FaultPlan};
    let n = scale.pick3(SMOKE_N, 200, 400);
    let mut catalog = GraphCatalog::new();
    catalog.insert("e2-er", e2_graph(n));
    catalog.insert(
        "sparse-grid",
        hybrid_scenarios::find("sparse-grid-thm11").expect("registered").graph(n),
    );
    let graphs = vec!["e2-er".to_string(), "sparse-grid".to_string()];
    // The 8 distinct queries of the standard mixed serving batch.
    let queries = mixed_query_batch(8);
    let mut records = Vec::new();

    let mixed_broker = Broker::new(&catalog, BrokerConfig::new(7));
    for tenant in ["acme", "globex"] {
        mixed_broker.register_tenant(tenant, TenantConfig::new(4)).expect("trivial tenant");
    }
    let mixed = run_load(
        &mixed_broker,
        &LoadSpec {
            name: "serve-mixed".into(),
            clients: scale.pick(4, 6),
            requests_per_client: scale.pick(6, 32),
            tenants: vec!["acme".into(), "globex".into()],
            graphs: graphs.clone(),
            queries: queries.clone(),
            seed: 7,
            retries: 0,
            retry_backoff_ms: 0,
            deadline_ms: None,
            updates: Vec::new(),
            update_every: 0,
        },
    );
    records.push(serving_record(n, &mixed));

    // Probe a real session's footprint to size a budget that cannot hold the
    // working set (2 graphs × 3 tenants), forcing byte-driven evictions.
    let probe = {
        let (g, _) = catalog.get("e2-er").expect("registered");
        let session = Session::new(&g, SessionConfig::new(7)).expect("session");
        for q in &queries {
            session.solve(q).expect("probe solve");
        }
        session.stats().prepared_bytes
    };
    let mut tight_cfg = BrokerConfig::new(7);
    tight_cfg.session_budget_bytes = probe + probe / 2;
    let tight_broker = Broker::new(&catalog, tight_cfg);
    for tenant in ["t0", "t1", "t2"] {
        tight_broker.register_tenant(tenant, TenantConfig::new(1)).expect("trivial tenant");
    }
    let tight = run_load(
        &tight_broker,
        &LoadSpec {
            name: "serve-tight".into(),
            clients: scale.pick(4, 6),
            requests_per_client: scale.pick(6, 16),
            tenants: vec!["t0".into(), "t1".into(), "t2".into()],
            graphs: graphs.clone(),
            queries: queries.clone(),
            seed: 11,
            retries: 2,
            retry_backoff_ms: 1,
            deadline_ms: None,
            updates: Vec::new(),
            update_every: 0,
        },
    );
    records.push(serving_record(n, &tight));

    // The chaos workload: faulty tenants, corruption, a breaker-guarded
    // panicking tenant, and deadline budgets on every request. The referee
    // replays each tenant's fault plan, so bit-identity is still enforced
    // online; failures are exactly the contained panics.
    let chaos_broker = Broker::new(&catalog, BrokerConfig::new(7));
    chaos_broker.register_tenant("steady", TenantConfig::new(4)).expect("trivial tenant");
    let mut lossy = TenantConfig::new(4);
    lossy.faults = Some(FaultPlan { corrupt_prob: 0.15, ..FaultPlan::drops(0.15, 21) });
    chaos_broker.register_tenant("lossy", lossy).expect("valid lossy plan");
    let mut crashy = TenantConfig::new(4);
    crashy.faults =
        Some(FaultPlan::node_crashes(vec![Crash { node: NodeId::new(0), at_round: 2 }]));
    chaos_broker.register_tenant("crashy", crashy).expect("valid crash plan");
    // Every admitted request panics, so the breaker trips deterministically
    // after `breaker_threshold` contained failures and every later request
    // is either breaker-rejected or a failed half-open probe.
    let mut panicky = TenantConfig::new(4);
    panicky.breaker_threshold = Some(2);
    panicky.breaker_cooldown = 2;
    panicky.chaos_panic_every = Some(1);
    chaos_broker.register_tenant("panicky", panicky).expect("trivial tenant");
    let chaos = run_load(
        &chaos_broker,
        &LoadSpec {
            name: "serve-chaos".into(),
            clients: scale.pick(3, 4),
            requests_per_client: scale.pick(4, 8),
            tenants: vec!["steady".into(), "lossy".into(), "crashy".into(), "panicky".into()],
            graphs,
            // The chaos tenants run every query cold through the reliable
            // layer; a leaner mix keeps the sweep's wall clock in check.
            queries: queries.into_iter().take(4).collect(),
            seed: 13,
            retries: 2,
            retry_backoff_ms: 1,
            deadline_ms: Some(2_000),
            updates: Vec::new(),
            update_every: 0,
        },
    );
    records.push(serving_record(n, &chaos));
    records
}

/// Human-readable table over [`bench_serving_records`] output.
pub fn serving_table(records: &[crate::json::BenchRecord]) -> Table {
    let mut t = Table::new(
        "Serving: closed-loop broker load (bit-identity verified online)",
        &[
            "workload", "n", "clients", "issued", "served", "shed", "failed", "p50 ms", "p95 ms",
            "p99 ms", "qps", "hits", "evict", "mismatch", "retry", "dlshed", "brk", "degr",
        ],
    );
    for r in records {
        let s = r.serving.as_ref().expect("serving record");
        let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
        t.row(vec![
            r.bench.clone(),
            r.n.to_string(),
            s.clients.to_string(),
            s.issued.to_string(),
            s.served.to_string(),
            s.shed.to_string(),
            s.failed.to_string(),
            ms(s.p50_ns),
            ms(s.p95_ns),
            ms(s.p99_ns),
            f3(s.qps),
            s.cache_hits.to_string(),
            s.cache_evicted.to_string(),
            s.mismatches.to_string(),
            s.retries.to_string(),
            s.deadline_shed.to_string(),
            s.breaker_rejected.to_string(),
            s.degraded_served.to_string(),
        ]);
    }
    t
}

/// Chaos recovery sweep for `BENCH_chaos.json` (schema
/// [`crate::json::SCHEMA_CHAOS`]): every `chaos-*` registry scenario runs
/// twice — once under its fault plan and once as a fault-free twin on the
/// same graph, seed, and suite — and each record carries both runs, so the
/// renderer can report the recovery overhead in simulated rounds and
/// wall-clock time. The chaos run's golden-verification verdict rides along;
/// a non-`pass` verdict is a recovery-contract regression.
pub fn bench_chaos_records(scale: Scale) -> Vec<crate::json::BenchRecord> {
    use crate::json::BenchRecord;
    let mut records = Vec::new();
    for sc in hybrid_scenarios::by_tag("chaos") {
        let n = match scale {
            Scale::Small => SMOKE_N,
            Scale::Full | Scale::Large => sc.default_n,
        };
        let healthy_twin = Scenario { faults: FaultPlan::None, ..*sc };
        let healthy = run_scenario_with(&healthy_twin, n, Engine::Fresh);
        let chaos = run_scenario_with(sc, n, Engine::Fresh);
        records
            .push(BenchRecord::from_scenario(&chaos).with_healthy(healthy.rounds, healthy.wall_ns));
    }
    records
}

/// Churn repair sweep for `BENCH_churn.json` (schema
/// [`crate::json::SCHEMA_CHURN`]), in three parts:
///
/// * `churn-repair-patch` / `churn-repair-full` — the same single-edge
///   reweight (the canonical localized delta) migrated through
///   [`Session::apply_delta`] under a permissive damage threshold
///   (incremental patch) and under threshold 0 (forced full re-prepare), on
///   a weighted cycle at `n ≥ 400`. Cycles are the bounded-growth family
///   this comparison needs: h-hop balls grow linearly, so the delta dirties
///   a bounded skeleton fraction (`≈ 2h/n`) and the patch path has real work
///   to skip — on an ER graph the ball covers most of the graph and the
///   comparison degenerates. The patch record carries
///   `full_wall / patch_wall` in `amortized_vs_cold`; the smoke gate
///   ([`churn_gate_violations`]) requires ≥ 2×.
/// * `churn-threshold-<t>` — the same migration across a damage-threshold
///   sweep; each record carries its threshold, the delta's dirtied-node
///   fraction, and which path repair took as the verdict. The gate requires
///   the full fallback exactly when the dirty fraction exceeds the
///   threshold.
/// * `churn-serve` — the churn+chaos serving loop: a healthy and a lossy
///   tenant racing reweight updates against queries through the broker,
///   every answer verified bit-identical online against the graph epoch the
///   request landed on. The gate requires zero mismatches and zero failures.
pub fn bench_churn_records(scale: Scale) -> Vec<crate::json::BenchRecord> {
    use crate::json::BenchRecord;
    use hybrid_core::RepairPath;
    use hybrid_graph::{DeltaBatch, GraphDelta};
    use hybrid_serve::{
        run_load, Broker, BrokerConfig, GraphCatalog, LoadSpec, LoadUpdate, TenantConfig,
    };

    // The SSSP preamble's hop budget is h = ξ·n^{2/5}·ln n, so the reweight
    // below dirties ≈ 2h/n of the cycle — about a fifth at n = 2400. Much
    // smaller n and the ball swallows the cycle (no locality left to
    // exploit); this size keeps both repair paths honest at every scale.
    let n = 2400;
    let g = cycle(n, 3).expect("cycle builds");
    let e0 = g.edges()[0];
    let mut batch = DeltaBatch::new();
    batch.push(GraphDelta::Reweight { u: e0.u, v: e0.v, w: 2 });
    let query = Query::sssp(NodeId::new(0)).build().expect("default SSSP query is valid");
    // One prepared session per threshold: `apply_delta` consults the
    // session's own damage threshold, and repair only migrates prepared
    // preambles, so each session solves once before the timed migration.
    let prepared = |threshold: f64| {
        let cfg = SessionConfig { damage_threshold: threshold, ..SessionConfig::new(41) };
        let session = Session::new(&g, cfg).expect("cycle session");
        session.solve(&query).expect("prepare the SSSP preamble");
        session
    };
    let path_label = |p: RepairPath| match p {
        RepairPath::Patched => "patched",
        RepairPath::Full => "full",
    };
    let timed = |bench: &str, threshold: f64| {
        let session = prepared(threshold);
        let mut path = RepairPath::Patched;
        let mut dirty = 0.0;
        let mut rec = BenchRecord::measure_min_of(bench, n, 5, || {
            let (_, rep) = session.apply_delta(&batch).expect("churn batch validates");
            path = rep.path();
            dirty = rep.dirty_fraction;
            rep.rounds
        });
        rec.family = Some("cycle".into());
        rec.query = Some(query.label().into());
        rec.verdict = Some(path_label(path).into());
        rec.damage_threshold = Some(threshold);
        rec.dirty_fraction = Some(dirty);
        rec
    };

    let mut records = Vec::new();
    let patch = timed("churn-repair-patch", 0.75);
    let full = timed("churn-repair-full", 0.0);
    let speedup = full.wall_ns as f64 / patch.wall_ns.max(1) as f64;
    records.push(patch.with_ratio(speedup));
    records.push(full);
    for &t in &[0.0, 0.1, 0.25, 0.5, 1.0] {
        records.push(timed(&format!("churn-threshold-{t:.2}"), t));
    }

    // The serving loop runs at smoke size — the lossy tenant solves every
    // query cold through the reliable layer, so this part is priced like the
    // serving smoke sweep, not like the n ≥ 400 repair measurement above.
    let serve_n = scale.pick(SMOKE_N, 200);
    let gs = cycle(serve_n, 3).expect("cycle builds");
    let mut catalog = GraphCatalog::new();
    catalog.insert("churn-cycle", gs.clone());
    let broker = Broker::new(&catalog, BrokerConfig::new(17));
    broker.register_tenant("steady", TenantConfig::new(4)).expect("trivial tenant");
    let mut lossy = TenantConfig::new(4);
    lossy.faults = Some(hybrid_sim::FaultPlan::drops(0.15, 23));
    broker.register_tenant("lossy", lossy).expect("valid lossy plan");
    // Reweight-only updates stay valid no matter how often or in what order
    // clients land them, so every injection must succeed.
    let updates: Vec<LoadUpdate> = gs
        .edges()
        .iter()
        .step_by(7)
        .take(2)
        .enumerate()
        .map(|(i, e)| {
            let mut b = DeltaBatch::new();
            b.push(GraphDelta::Reweight { u: e.u, v: e.v, w: 2 + i as Distance });
            LoadUpdate { tenant: "steady".into(), graph: "churn-cycle".into(), batch: b }
        })
        .collect();
    let report = run_load(
        &broker,
        &LoadSpec {
            name: "churn-serve".into(),
            clients: scale.pick(3, 4),
            requests_per_client: scale.pick(6, 10),
            tenants: vec!["steady".into(), "lossy".into()],
            graphs: vec!["churn-cycle".into()],
            queries: mixed_query_batch(4),
            seed: 17,
            retries: 2,
            retry_backoff_ms: 1,
            deadline_ms: None,
            updates,
            update_every: 3,
        },
    );
    let mut rec = serving_record(serve_n, &report);
    rec.family = Some("cycle".into());
    rec.updates_applied = Some(report.updates_applied);
    records.push(rec);
    records
}

/// The churn smoke gate over [`bench_churn_records`] output: incremental
/// repair must beat the full re-prepare ≥ 2× at `n ≥ 400`, the full fallback
/// must fire exactly when the dirty fraction exceeds the damage threshold
/// (and the sweep must exercise both paths), and the churn+chaos serving
/// loop must apply updates with zero bit-identity mismatches and zero
/// failures. Returns the violations; empty means the gate holds.
pub fn churn_gate_violations(records: &[crate::json::BenchRecord]) -> Vec<String> {
    let mut v = Vec::new();
    match (
        records.iter().find(|r| r.bench == "churn-repair-patch"),
        records.iter().find(|r| r.bench == "churn-repair-full"),
    ) {
        (Some(p), Some(f)) => {
            if p.n < 400 {
                v.push(format!("patch-vs-full must be measured at n ≥ 400, got n = {}", p.n));
            }
            if p.verdict.as_deref() != Some("patched") {
                v.push(format!("churn-repair-patch took the {:?} path", p.verdict));
            }
            if f.verdict.as_deref() != Some("full") {
                v.push(format!("churn-repair-full took the {:?} path", f.verdict));
            }
            match p.amortized_ratio {
                Some(r) if r >= 2.0 => {}
                r => v.push(format!(
                    "incremental repair must be ≥ 2× faster than the full re-prepare at \
                     n = {}, got {r:?}",
                    p.n
                )),
            }
        }
        _ => v.push("churn sweep is missing the patch/full repair records".into()),
    }
    let sweep: Vec<_> =
        records.iter().filter(|r| r.bench.starts_with("churn-threshold-")).collect();
    let (mut fulls, mut patches) = (0, 0);
    for r in &sweep {
        let (Some(t), Some(d)) = (r.damage_threshold, r.dirty_fraction) else {
            v.push(format!("{}: missing damage_threshold/dirty_fraction", r.bench));
            continue;
        };
        let want = if d > t { "full" } else { "patched" };
        if r.verdict.as_deref() != Some(want) {
            v.push(format!(
                "{}: dirty fraction {d:.4} vs threshold {t:.2} must take the {want} path, \
                 took {:?}",
                r.bench, r.verdict
            ));
        }
        match r.verdict.as_deref() {
            Some("full") => fulls += 1,
            _ => patches += 1,
        }
    }
    if sweep.is_empty() || fulls == 0 || patches == 0 {
        v.push(format!(
            "threshold sweep must exercise both repair paths (full: {fulls}, patched: {patches})"
        ));
    }
    match records.iter().find(|r| r.bench == "churn-serve") {
        Some(s) => match (&s.serving, s.updates_applied) {
            (Some(f), Some(u)) => {
                if f.mismatches > 0 {
                    v.push(format!(
                        "churn-serve: {} bit-identity mismatch(es) under churn+chaos",
                        f.mismatches
                    ));
                }
                if f.failed > 0 {
                    v.push(format!("churn-serve: {} request(s)/update(s) failed", f.failed));
                }
                if f.served == 0 {
                    v.push("churn-serve: no request was served".into());
                }
                if u == 0 {
                    v.push("churn-serve: no update was applied".into());
                }
            }
            _ => v.push("churn-serve record is missing its serving/update fields".into()),
        },
        None => v.push("churn sweep is missing the churn-serve record".into()),
    }
    v
}

/// Node count for smoke-scale scenario runs (tiny-n full-matrix).
pub const SMOKE_N: usize = 48;

/// Runs the scenario registry (optionally filtered by tag) under the
/// [`Engine::Fresh`] path; see [`scenario_reports_with`].
pub fn scenario_reports(scale: Scale, filter: Option<&str>) -> Vec<ScenarioReport> {
    scenario_reports_with(scale, filter, Engine::Fresh)
}

/// Runs the scenario registry (optionally filtered by tag) under the chosen
/// execution engine: at [`Scale::Small`] every scenario runs at [`SMOKE_N`]
/// in one parallel batch; otherwise scenarios run at their own `default_n`,
/// batched by size so the parallel runner still applies.
pub fn scenario_reports_with(
    scale: Scale,
    filter: Option<&str>,
    engine: Engine,
) -> Vec<ScenarioReport> {
    let selected: Vec<&Scenario> = match filter {
        Some(tag) => hybrid_scenarios::by_tag(tag),
        None => registry().iter().collect(),
    };
    match scale {
        Scale::Small => run_scenarios_with(&selected, SMOKE_N, engine),
        Scale::Full | Scale::Large => {
            let mut sizes: Vec<usize> = selected.iter().map(|s| s.default_n).collect();
            sizes.sort_unstable();
            sizes.dedup();
            let mut out = Vec::new();
            for n in sizes {
                let group: Vec<&Scenario> =
                    selected.iter().copied().filter(|s| s.default_n == n).collect();
                out.extend(run_scenarios_with(&group, n, engine));
            }
            out
        }
    }
}

/// Traces each scenario at size `n` and writes two artifacts per run into
/// `dir` (created if needed): `<name>.trace.json`, a Chrome-trace document
/// with simulated rounds as the clock (load it in `chrome://tracing` or
/// Perfetto), and `<name>.rollup.txt`, the per-phase text summary. Returns
/// the number of runs whose golden verification — which folds in trace
/// reconciliation against the metrics counters — failed.
pub fn export_scenario_traces(dir: &std::path::Path, scenarios: &[&Scenario], n: usize) -> usize {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("create trace dir {}: {e}", dir.display()));
    let mut failures = 0;
    for sc in scenarios {
        let (report, rec) = run_scenario_traced(sc, n);
        let chrome = rec.chrome_trace();
        let rollup = rec.rollup();
        assert!(
            !rec.is_empty() && !chrome.is_empty() && !rollup.is_empty(),
            "{}: a traced run must emit events",
            sc.name
        );
        let trace_path = dir.join(format!("{}.trace.json", sc.name));
        std::fs::write(&trace_path, &chrome)
            .unwrap_or_else(|e| panic!("write {}: {e}", trace_path.display()));
        let rollup_path = dir.join(format!("{}.rollup.txt", sc.name));
        std::fs::write(&rollup_path, &rollup)
            .unwrap_or_else(|e| panic!("write {}: {e}", rollup_path.display()));
        eprintln!(
            "traced {:<22} {:>6} events, top phase {} ({} rounds) -> {}",
            sc.name,
            report.trace_events,
            report.top_phase,
            report.top_phase_rounds,
            trace_path.display(),
        );
        if !report.passed() {
            eprintln!("  verification FAILED: {}", report.detail);
            failures += 1;
        }
    }
    failures
}

/// E16 — the scenario matrix: every registry workload (graph family × fault
/// plan × algorithm suite) with its golden-verification verdict.
pub fn e16_scenarios(scale: Scale) -> Table {
    scenario_table(&scenario_reports(scale, None))
}

/// Renders scenario reports as a printable table.
pub fn scenario_table(reports: &[ScenarioReport]) -> Table {
    let mut t = Table::new(
        "E16: scenario matrix — registry workloads under golden verification",
        &["scenario", "family", "faults", "suite", "n", "rounds", "msgs", "dropped", "verdict"],
    );
    for r in reports {
        t.row(vec![
            r.scenario.clone(),
            r.family.to_string(),
            r.faults.to_string(),
            r.suite.to_string(),
            r.n.to_string(),
            r.rounds.to_string(),
            r.global_messages.to_string(),
            r.dropped_messages.to_string(),
            r.verdict.as_str().to_string(),
        ]);
    }
    t
}

/// Runs every experiment at the given scale, returning all tables.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        e1_token_routing(scale),
        e2_apsp(scale),
        e3_kssp(scale),
        e4_sssp(scale),
        e5_diameter(scale),
        e6_kssp_lower_bound(scale),
        e7_diameter_lower_bound(scale),
        e8_helper_sets(scale),
        e9_ruling_sets(scale),
        e10_skeletons(scale),
        e11_congestion(scale),
        e12_clique_sim(scale),
        e13_xi_ablation(scale),
        e14_mu_ablation(scale),
        e15_gamma_ablation(scale),
        e16_scenarios(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_experiments_run() {
        // Smoke: the cheap experiments complete and produce rows.
        for table in [
            e1_token_routing(Scale::Small),
            e8_helper_sets(Scale::Small),
            e9_ruling_sets(Scale::Small),
            e10_skeletons(Scale::Small),
        ] {
            assert!(table.render().lines().count() > 4);
        }
    }

    #[test]
    fn export_scenario_traces_writes_chrome_trace_and_rollup() {
        let dir = std::env::temp_dir().join(format!("hybrid-trace-test-{}", std::process::id()));
        let sc = hybrid_scenarios::find("sparse-grid-thm11").expect("registered");
        let failures = export_scenario_traces(&dir, &[sc], 36);
        assert_eq!(failures, 0);
        let chrome = std::fs::read_to_string(dir.join("sparse-grid-thm11.trace.json")).unwrap();
        assert!(chrome.trim_start().starts_with('{'));
        assert!(chrome.contains("\"traceEvents\""));
        let rollup = std::fs::read_to_string(dir.join("sparse-grid-thm11.rollup.txt")).unwrap();
        assert!(!rollup.trim().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apsp_records_cover_all_benches_and_sizes() {
        let records = bench_apsp_records(Scale::Small);
        assert_eq!(records.len(), 6); // 2 sizes x 3 benches
        assert!(records.iter().any(|r| r.bench == "thm11_apsp" && r.rounds > 0));
        assert!(records.iter().any(|r| r.bench == "reference_apsp" && r.rounds == 0));
        assert!(records.iter().all(|r| r.wall_ns > 0));
        // Solver-backed records carry the canonical query label; the
        // sequential reference has no query.
        for r in &records {
            match r.bench.as_str() {
                "thm11_apsp" => assert_eq!(r.query.as_deref(), Some("apsp-thm11")),
                "soda20_apsp" => assert_eq!(r.query.as_deref(), Some("apsp-soda20")),
                _ => assert_eq!(r.query, None),
            }
            // Simulator-backed records carry the round-engine budget.
            assert_eq!(r.threads.is_some(), r.query.is_some(), "{}", r.bench);
        }
    }

    #[test]
    fn bench_apsp_json_pins_instances_and_algorithms() {
        // The recorded perf trajectory must keep benchmarking the same E2
        // graph instances and the same algorithms across the API redesign.
        let doc =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_apsp.json"))
                .expect("BENCH_apsp.json at the repo root");
        assert!(doc.contains(&format!("\"schema\": \"{}\"", crate::json::SCHEMA)));
        for n in [200usize, 400] {
            for bench in ["reference_apsp", "thm11_apsp", "soda20_apsp"] {
                assert!(
                    doc.contains(&format!("\"bench\": \"{bench}\", \"n\": {n}")),
                    "record ({bench}, {n}) missing from BENCH_apsp.json"
                );
            }
        }
        for label in ["apsp-thm11", "apsp-soda20"] {
            assert!(doc.contains(&format!("\"query\": \"{label}\"")), "label {label} missing");
        }
        // The E2 instance is still bit-identical to the pre-registry
        // er(n, 12, 4, 3) graphs the trajectory has recorded since PR 1.
        for n in [200usize, 400] {
            assert_eq!(e2_graph(n).edges(), er(n, 12.0, 4, 3).edges());
        }
    }

    #[test]
    fn throughput_records_measure_cold_and_session() {
        let records = bench_throughput_records(Scale::Small);
        assert_eq!(records.len(), 4); // 2 sizes × (cold, session)
        for r in &records {
            assert_eq!(r.batch, Some(32));
            assert_eq!(r.family.as_deref(), Some("e2-er"));
            assert!(r.qps.unwrap_or(0.0) > 0.0, "{}: qps missing", r.bench);
        }
        let session =
            records.iter().find(|r| r.bench == "mixed32_session" && r.n == 200).expect("record");
        // The ratio assertion itself lives in tests/session_equivalence.rs;
        // here the sweep must at least show amortization, not regression.
        assert!(session.amortized_ratio.expect("ratio") > 1.0);
    }

    #[test]
    fn serving_records_account_for_every_request() {
        let records = bench_serving_records(Scale::Small);
        assert_eq!(records.len(), 3); // serve-mixed + serve-tight + serve-chaos
        for r in &records {
            let s = r.serving.as_ref().expect("serving block");
            assert_eq!(
                s.served + s.shed + s.deadline_shed + s.breaker_rejected + s.failed,
                s.issued,
                "{}: every request must be accounted",
                r.bench
            );
            if r.bench != "serve-chaos" {
                assert_eq!(s.failed, 0, "{}: healthy workloads must not fail", r.bench);
            }
            assert_eq!(s.mismatches, 0, "{}: bit-identity must hold", r.bench);
            assert!(s.verified >= s.served, "{}: every served response is verified", r.bench);
            assert!(s.served > 0 && s.qps > 0.0, "{}: the loop must make progress", r.bench);
            assert!(s.breaker_probes <= s.breaker_opens, "{}: probe without open", r.bench);
        }
        let mixed = &records[0];
        assert_eq!(mixed.bench, "serve-mixed");
        let s = mixed.serving.as_ref().unwrap();
        assert!(s.cache_hits > 0, "steady-state mix must hit resident sessions");
        // The tight workload's budget holds ~1.5 sessions for a 6-session
        // working set, so byte-driven eviction must actually fire.
        let tight = records[1].serving.as_ref().unwrap();
        assert!(tight.cache_evicted > 0, "tight budget must evict");
        // The chaos workload must actually exercise the fault-tolerant path:
        // contained panics are quarantined, and the crashing tenant's served
        // answers come back explicitly degraded.
        let chaos = records[2].serving.as_ref().unwrap();
        assert_eq!(records[2].bench, "serve-chaos");
        assert!(chaos.failed > 0, "the panicking tenant must fail contained");
        assert!(chaos.quarantined > 0, "contained panics must quarantine the session");
        assert!(chaos.degraded_served > 0, "the crashing tenant must serve degraded answers");
        serving_table(&records).render();
    }

    #[test]
    fn chaos_records_measure_recovery_overhead() {
        let records = bench_chaos_records(Scale::Small);
        assert_eq!(records.len(), hybrid_scenarios::by_tag("chaos").len());
        for r in &records {
            let name = r.scenario.as_deref().expect("scenario name");
            assert!(name.starts_with("chaos-") || name.starts_with("churn-chaos-"), "{name}");
            assert_eq!(r.verdict.as_deref(), Some("pass"), "{name} regressed recovery");
            let healthy = r.healthy_rounds.expect("healthy twin rounds");
            assert!(healthy > 0, "{name}: twin must do work");
            assert!(
                r.rounds >= healthy,
                "{name}: recovery is charged, never discounted ({} < {healthy})",
                r.rounds
            );
            assert!(r.healthy_wall_ns.expect("twin wall clock") > 0);
        }
        // At least one chaos scenario must actually pay a recovery premium.
        assert!(records.iter().any(|r| r.rounds > r.healthy_rounds.unwrap()));
    }

    #[test]
    fn churn_records_pass_the_gate_and_the_gate_bites() {
        let records = bench_churn_records(Scale::Small);
        let violations = churn_gate_violations(&records);
        assert!(violations.is_empty(), "{violations:#?}");
        // The repair measurement must sit at the gated size even at smoke
        // scale — the ≥ 2× bound is defined at n ≥ 400.
        let patch = records.iter().find(|r| r.bench == "churn-repair-patch").unwrap();
        assert!(patch.n >= 400);
        assert!(patch.amortized_ratio.unwrap() >= 2.0);
        // A doctored record set must trip the gate: a slow patch path …
        let mut doctored = records.clone();
        doctored.iter_mut().filter(|r| r.bench == "churn-repair-patch").for_each(|r| {
            r.amortized_ratio = Some(1.5);
        });
        assert!(!churn_gate_violations(&doctored).is_empty(), "speedup gate must bite");
        // … and a full fallback below the damage threshold.
        let mut doctored = records.clone();
        doctored.iter_mut().filter(|r| r.bench.starts_with("churn-threshold-")).for_each(|r| {
            r.verdict = Some("full".into());
        });
        assert!(!churn_gate_violations(&doctored).is_empty(), "threshold gate must bite");
    }

    #[test]
    fn scenario_smoke_matrix_all_pass() {
        let reports = scenario_reports(Scale::Small, None);
        assert_eq!(reports.len(), registry().len());
        assert!(reports.iter().all(|r| r.passed()), "{reports:?}");
        let filtered = scenario_reports(Scale::Small, Some("faulty"));
        assert!(!filtered.is_empty() && filtered.len() < reports.len());
        assert!(scenario_table(&reports).render().contains("pass"));
    }
}
