//! Property-based tests (proptest) over the core invariants of the paper's
//! building blocks.

use hybrid_shortest_paths::core::dissemination::disseminate;
use hybrid_shortest_paths::core::hash::{KWiseHash, TokenLabel};
use hybrid_shortest_paths::core::ruling_set::{ruling_set, verify};
use hybrid_shortest_paths::core::token_routing::{route_tokens, RoutingRates, Token};
use hybrid_shortest_paths::graph::bfs::unweighted_diameter;
use hybrid_shortest_paths::graph::dijkstra::dijkstra;
use hybrid_shortest_paths::graph::generators::erdos_renyi_connected;
use hybrid_shortest_paths::graph::limited::hop_limited_distances;
use hybrid_shortest_paths::graph::lower_bounds::{GammaGraph, SetDisjointness};
use hybrid_shortest_paths::graph::skeleton::{count_distance_violations, Skeleton};
use hybrid_shortest_paths::graph::{Graph, NodeId, INFINITY};
use hybrid_shortest_paths::sim::{Envelope, FaultPlan, FlatInboxes, HybridConfig, HybridNet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (8usize..60, 0u64..1000, 1u64..8).prop_map(|(n, seed, w)| {
        let mut rng = StdRng::seed_from_u64(seed);
        erdos_renyi_connected(n, 2.5 / n as f64, w, &mut rng).expect("generator")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// d_h is monotone in h, sandwiched between d and ∞, and equals d at h = n.
    #[test]
    fn hop_limited_distance_invariants(g in arb_connected_graph(), src in 0usize..8) {
        let src = NodeId::new(src % g.len());
        let exact = dijkstra(&g, src);
        let mut prev = hop_limited_distances(&g, src, 0);
        for h in [1usize, 2, 4, 8, g.len()] {
            let cur = hop_limited_distances(&g, src, h);
            for v in g.nodes() {
                prop_assert!(cur[v.index()] <= prev[v.index()]);
                prop_assert!(cur[v.index()] >= exact.dist(v));
            }
            prev = cur;
        }
        for v in g.nodes() {
            prop_assert_eq!(prev[v.index()], exact.dist(v));
        }
    }

    /// Ruling sets honor their (α, β) contract on arbitrary connected graphs.
    #[test]
    fn ruling_set_contract(g in arb_connected_graph(), mu in 1usize..5) {
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let rs = ruling_set(&mut net, mu, "rs");
        prop_assert!(!rs.rulers.is_empty());
        let (min_pair, max_dom) = verify(&g, &rs);
        if rs.rulers.len() > 1 {
            prop_assert!(min_pair >= rs.alpha as u64);
        }
        prop_assert!(max_dom <= rs.beta as u64);
    }

    /// Token routing delivers every token exactly once, whatever the workload.
    #[test]
    fn token_routing_delivers(
        g in arb_connected_graph(),
        seed in 0u64..500,
        per in 1usize..5,
    ) {
        let n = g.len();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let ns = 2 + (seed as usize % 4);
        let senders: Vec<NodeId> = (0..ns).map(|i| NodeId::new((i * 7 + 1) % n)).collect();
        let mut senders = senders;
        senders.sort_unstable();
        senders.dedup();
        let receivers: Vec<NodeId> =
            { let mut r: Vec<NodeId> = (0..3).map(|i| NodeId::new((i * 11 + 2) % n)).collect(); r.sort_unstable(); r.dedup(); r };
        let mut tokens = Vec::new();
        for &s in &senders {
            for i in 0..per {
                let r = receivers[rng.gen_range(0..receivers.len())];
                tokens.push(Token::new(s, r, i as u32, (s.raw() as u64) << 16 | i as u64));
            }
        }
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let routed = route_tokens(
            &mut net, tokens.clone(), &senders, &receivers,
            RoutingRates { p_s: senders.len() as f64 / n as f64, p_r: receivers.len() as f64 / n as f64 },
            seed, "tr",
        ).unwrap();
        prop_assert_eq!(routed.len(), tokens.len());
        for t in &tokens {
            let got = routed.for_receiver(t.label.r);
            prop_assert!(got.iter().any(|g| g.label == t.label && g.payload == t.payload));
        }
    }

    /// Dissemination terminates with a radius no larger than the diameter.
    #[test]
    fn dissemination_radius_bounded(g in arb_connected_graph(), k in 1usize..40, seed in 0u64..100) {
        let n = g.len();
        let owners: Vec<NodeId> = (0..k).map(|i| NodeId::new((i * 13) % n)).collect();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let rep = disseminate(&mut net, &owners, seed, "d").unwrap();
        let diam = unweighted_diameter(&g);
        prop_assert!(rep.local_radius <= diam);
        prop_assert_eq!(rep.k, k);
    }

    /// Skeletons with h ≥ n preserve all pairwise distances exactly: every
    /// simple path fits in the hop budget, so d_h = d and skeleton edges carry
    /// true distances. (h ≥ diameter is NOT enough on weighted graphs — a
    /// minimum-weight path may use more hops than the hop diameter.)
    #[test]
    fn skeleton_distance_preservation(g in arb_connected_graph(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut nodes: Vec<NodeId> = g.nodes().filter(|_| rng.gen_bool(0.3)).collect();
        if nodes.is_empty() { nodes.push(NodeId::new(0)); }
        let s = Skeleton::from_nodes(&g, nodes, g.len()).unwrap();
        prop_assert_eq!(count_distance_violations(&g, &s), 0);
    }

    /// The Γ construction's diameter gap (Lemmas 7.1/7.2) holds for arbitrary
    /// random instances.
    #[test]
    fn gamma_diameter_gap(k in 2usize..5, ell in 2usize..5, weighted in any::<bool>(), seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = if weighted { (ell as u64) * 3 + 1 } else { 1 };
        let dis = SetDisjointness::random_disjoint(k, &mut rng);
        let gd = GammaGraph::build(dis, ell, w).unwrap();
        let d_dis = if w == 1 {
            unweighted_diameter(&gd.graph)
        } else {
            hybrid_shortest_paths::graph::apsp::weighted_diameter(&gd.graph)
        };
        prop_assert!(d_dis <= gd.disjoint_diameter());

        let int = SetDisjointness::random_intersecting(k, &mut rng);
        let gi = GammaGraph::build(int, ell, w).unwrap();
        let d_int = if w == 1 {
            unweighted_diameter(&gi.graph)
        } else {
            hybrid_shortest_paths::graph::apsp::weighted_diameter(&gi.graph)
        };
        prop_assert_eq!(d_int, gi.intersecting_diameter());
        prop_assert!(d_int > d_dis);
    }

    /// k-wise hash evaluations are deterministic, in range, and roughly uniform.
    #[test]
    fn hash_family_behaviour(seed in 0u64..1000, range in 2u64..64, k in 2usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = KWiseHash::sample(k, range, &mut rng);
        let mut seen = vec![0u32; range as usize];
        for s in 0..32u32 {
            for r in 0..4u32 {
                let label = TokenLabel::new(NodeId::new(s as usize), NodeId::new(r as usize), 0);
                let v = h.eval(label.key());
                prop_assert!(v < range);
                prop_assert_eq!(v, h.eval(label.key()));
                seen[v as usize] += 1;
            }
        }
        // No bucket hogs everything (weak uniformity smoke check).
        let max = *seen.iter().max().unwrap();
        prop_assert!(max < 128, "degenerate hash: {max}");
    }

    /// Reliable exchange under any `drop_prob < 0.5` delivers every message
    /// to its (live) destination in per-sender sequence order, bit-identically
    /// under thread budgets 1 and 4.
    #[test]
    fn reliable_exchange_delivers_in_order_across_thread_budgets(
        g in arb_connected_graph(),
        drop_prob in 0.0f64..0.5,
        fault_seed in 0u64..1000,
        batch_seed in 0u64..1000,
        m in 1usize..80,
    ) {
        let n = g.len();
        let mut rng = StdRng::seed_from_u64(batch_seed);
        use rand::Rng;
        // Payload = batch index, so per-(src, dst) sequence order is simply
        // increasing payload.
        let batch: Vec<(usize, usize, u64)> = (0..m)
            .map(|i| (rng.gen_range(0..n), rng.gen_range(0..n), i as u64))
            .collect();
        let run = |threads: usize| {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            net.set_round_threads(threads);
            net.inject_faults(&FaultPlan::drops(drop_prob, fault_seed)).unwrap();
            net.set_reliable(true);
            let mut outbox: Vec<Envelope<u64>> = batch
                .iter()
                .map(|&(s, d, p)| Envelope::new(NodeId::new(s), NodeId::new(d), p))
                .collect();
            let mut flat = FlatInboxes::new();
            net.exchange_into("pt", &mut outbox, &mut flat).unwrap();
            let (msgs, starts) = flat.as_parts();
            (msgs.to_vec(), starts.to_vec(), net.rounds(), net.metrics().clone())
        };
        let (msgs, starts, rounds, metrics) = run(1);

        // No crashes in the plan: nothing may be suppressed or declared dead,
        // and every single message must arrive.
        prop_assert_eq!(metrics.declared_dead, 0);
        prop_assert_eq!(metrics.suppressed_by_crash, 0);
        prop_assert_eq!(msgs.len(), batch.len());
        let mut seen = vec![false; batch.len()];
        for d in 0..n {
            let slice = &msgs[starts[d]..starts[d + 1]];
            for (src, payload) in slice {
                let idx = *payload as usize;
                prop_assert!(!seen[idx], "duplicate delivery of message {idx}");
                seen[idx] = true;
                prop_assert_eq!(batch[idx].0, src.index());
                prop_assert_eq!(batch[idx].1, d);
            }
            // Per-sender sequence order: payloads from one src must appear in
            // the order they were enqueued.
            for src in 0..n {
                let from_src: Vec<u64> =
                    slice.iter().filter(|(s, _)| s.index() == src).map(|(_, p)| *p).collect();
                prop_assert!(
                    from_src.windows(2).all(|w| w[0] < w[1]),
                    "out-of-sequence delivery {:?} for src {src} -> dst {d}",
                    from_src
                );
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "reliable exchange lost a message");
        prop_assert!(metrics.retransmissions >= metrics.dropped_by_loss);

        // Bit-identity across thread budgets: the reliable schedule is fully
        // deterministic, so the parallel wire engine may not change anything.
        let (p_msgs, p_starts, p_rounds, p_metrics) = run(4);
        prop_assert_eq!(p_msgs, msgs);
        prop_assert_eq!(p_starts, starts);
        prop_assert_eq!(p_rounds, rounds);
        prop_assert_eq!(p_metrics.retransmissions, metrics.retransmissions);
        prop_assert_eq!(p_metrics.dropped_by_loss, metrics.dropped_by_loss);
        prop_assert_eq!(p_metrics.recovered_messages, metrics.recovered_messages);
        prop_assert_eq!(p_metrics.global_messages, metrics.global_messages);
    }

    /// Any delta sequence — however it is split into batches — equals the
    /// from-scratch construction of the final edge list (the canonicalization
    /// guarantee of `Graph::apply_delta`).
    #[test]
    fn delta_sequence_equals_from_scratch(
        g in arb_connected_graph(),
        seed in 0u64..1000,
        ops in 1usize..40,
    ) {
        use hybrid_shortest_paths::graph::{DeltaBatch, GraphBuilder, GraphDelta};
        use std::collections::BTreeMap;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let n = g.len();
        // Shadow model of the live edge set, evolved alongside the ops.
        let mut live: BTreeMap<(u32, u32), u64> =
            g.edges().iter().map(|e| ((e.u.raw(), e.v.raw()), e.w)).collect();
        let mut batches: Vec<DeltaBatch> = vec![DeltaBatch::new()];
        for _ in 0..ops {
            let op = loop {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a == b {
                    continue;
                }
                let (u, v) = (NodeId::new(a.min(b)), NodeId::new(a.max(b)));
                let key = (u.raw(), v.raw());
                match rng.gen_range(0..3) {
                    0 if !live.contains_key(&key) => {
                        let w = rng.gen_range(1u64..100);
                        live.insert(key, w);
                        break GraphDelta::AddEdge { u, v, w };
                    }
                    1 if live.contains_key(&key) => {
                        live.remove(&key);
                        break GraphDelta::RemoveEdge { u, v };
                    }
                    2 if live.contains_key(&key) => {
                        let w = rng.gen_range(1u64..100);
                        live.insert(key, w);
                        break GraphDelta::Reweight { u, v, w };
                    }
                    _ => continue,
                }
            };
            if rng.gen_bool(0.3) {
                batches.push(DeltaBatch::new());
            }
            batches.last_mut().unwrap().push(op);
        }
        // Stepped application, batch by batch.
        let mut stepped = g.clone();
        for b in &batches {
            stepped = stepped.apply_delta(b).unwrap();
        }
        // The same ops as one batch.
        let one: DeltaBatch = batches.iter().flat_map(|b| b.ops().iter().copied()).collect();
        let direct = g.apply_delta(&one).unwrap();
        // From-scratch construction of the final (sorted) edge list.
        let mut fresh = GraphBuilder::new(n);
        for (&(u, v), &w) in &live {
            fresh.add_edge(NodeId::new(u as usize), NodeId::new(v as usize), w).unwrap();
        }
        let fresh = fresh.build().unwrap();
        prop_assert_eq!(&stepped, &direct);
        prop_assert_eq!(&stepped, &fresh);
    }

    /// Distances produced by the reference Dijkstra satisfy the triangle
    /// inequality and symmetry.
    #[test]
    fn reference_metric_axioms(g in arb_connected_graph()) {
        let m = hybrid_shortest_paths::graph::apsp::apsp(&g);
        for a in g.nodes().take(6) {
            for b in g.nodes().take(6) {
                prop_assert_eq!(m.get(a, b), m.get(b, a));
                for c in g.nodes().take(6) {
                    if m.get(a, b) != INFINITY && m.get(b, c) != INFINITY {
                        prop_assert!(m.get(a, c) <= m.get(a, b) + m.get(b, c));
                    }
                }
            }
        }
    }
}
