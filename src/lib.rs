//! Umbrella crate for the reproduction of Kuhn & Schneider,
//! *Computing Shortest Paths and Diameter in the Hybrid Network Model* (PODC 2020).
//!
//! This crate re-exports the workspace members so that examples and integration
//! tests can address the whole system through one dependency:
//!
//! * [`graph`] — graph substrate (types, generators, reference algorithms,
//!   skeletons, lower-bound constructions).
//! * [`sim`] — the HYBRID communication-model simulator (round clock, NCC global
//!   channel with congestion enforcement, LOCAL phase accounting).
//! * [`clique`] — the congested-clique substrate (Lenzen-routing cost model and
//!   CLIQUE algorithms used as plugins by the paper's framework).
//! * [`core`] — the paper's algorithms: token routing, APSP, k-SSP, SSSP,
//!   diameter, and the lower-bound experiment harnesses.
//! * [`scenarios`] — the scenario engine: declarative workload registry,
//!   fault injection, parallel runner, and golden verification.

#![warn(missing_docs)]

pub use clique_sim as clique;
pub use hybrid_core as core;
pub use hybrid_graph as graph;
pub use hybrid_scenarios as scenarios;
pub use hybrid_sim as sim;
