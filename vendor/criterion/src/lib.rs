//! Offline stub of the `criterion` API surface used by `crates/bench/benches`.
//!
//! Implements `criterion_group!` / `criterion_main!`, [`Criterion`],
//! benchmark groups with `sample_size`, and `Bencher::iter`, reporting
//! min/mean/max wall-clock per iteration on stdout. No statistical analysis,
//! no HTML reports — enough to time the experiment runners and to keep
//! `cargo bench` working without crates.io access.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, sample_size: 10 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = if self.sample_size == 0 { 10 } else { self.sample_size };
        run_bench(name, samples, &mut f);
        self
    }

    /// Default sample count for group-less benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    #[allow(dead_code)]
    criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { nanos: Vec::with_capacity(samples) };
    for _ in 0..samples {
        f(&mut b);
    }
    let (mut min, mut max, mut sum) = (u128::MAX, 0u128, 0u128);
    for &ns in &b.nanos {
        min = min.min(ns);
        max = max.max(ns);
        sum += ns;
    }
    if b.nanos.is_empty() {
        println!("  {name}: no samples");
    } else {
        let mean = sum / b.nanos.len() as u128;
        println!(
            "  {name}: mean {} min {} max {} ({} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            b.nanos.len()
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    /// Times one execution of `routine` (criterion runs many; the stub runs
    /// one per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.nanos.push(start.elapsed().as_nanos());
        drop(black_box(out));
    }
}

/// Declares a benchmark group function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.500µs");
        assert_eq!(fmt_ns(2_000_000), "2.000ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
