//! Scenario: landmark-based routing tables in a device-to-device mesh.
//!
//! Mobile devices form a local radio mesh and can also talk through the
//! cellular network (the paper's motivating hybrid setting). To route within
//! the mesh, every device needs its distance to `k` landmark nodes — exactly
//! the k-source shortest paths problem (Theorem 1.2). We run the `(7+ε)`
//! weighted / `(2+ε)` unweighted k-SSP (Corollary 4.7) on the registry's
//! `geo-mesh-kssp47` scenario and measure the actual stretch of landmark
//! routing built on the estimates.
//!
//! ```sh
//! cargo run --release --example p2p_routing_tables
//! ```

use hybrid_shortest_paths::graph::apsp::apsp;
use hybrid_shortest_paths::graph::INFINITY;
use hybrid_shortest_paths::scenarios::{self, workloads};
use hybrid_shortest_paths::{solve, KsspCorollary, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = scenarios::find("geo-mesh-kssp47").expect("registered scenario");
    let k = 12;
    let g = scenario.graph(180);
    let landmarks = workloads::random_nodes(g.len(), k, scenario.seed);
    println!("mesh: {} devices, {} links; {} landmarks", g.len(), g.num_edges(), k);

    // Distributed k-SSP (Corollary 4.7) through the solver facade.
    let mut net = scenario.net(&g);
    let query =
        Query::kssp(KsspCorollary::Cor47).sources(landmarks.clone()).eps(0.5).xi(1.0).build()?;
    let out = solve(&mut net, &query, scenario.seed)?;
    println!(
        "k-SSP [{}] finished in {} rounds (skeleton {}, guarantee factor {:.2})",
        out.label(),
        out.rounds,
        out.skeleton_size,
        out.guarantee.factor()
    );
    let (_, est) = out.distance_rows().expect("k-SSP answers with rows");

    // Build landmark routing: route u -> v via the landmark minimizing
    // d̃(u, l) + d̃(v, l); measure stretch against true distances.
    let exact = apsp(&g);
    let mut worst: f64 = 1.0;
    let mut sum = 0.0;
    let mut count = 0u64;
    for u in g.nodes() {
        for v in g.nodes() {
            if u >= v {
                continue;
            }
            let via = (0..k)
                .map(|l| est[l][u.index()].saturating_add(est[l][v.index()]))
                .min()
                .unwrap_or(INFINITY);
            let d = exact.get(u, v);
            if d == 0 || d == INFINITY || via == INFINITY {
                continue;
            }
            let stretch = via as f64 / d as f64;
            worst = worst.max(stretch);
            sum += stretch;
            count += 1;
        }
    }
    println!(
        "landmark routing stretch: mean {:.3}, worst {:.3} over {count} pairs",
        sum / count as f64,
        worst
    );
    // Sanity: the estimates themselves never undershoot the true distances
    // (the routing stretch on top depends on landmark placement).
    for (l_idx, &l) in landmarks.iter().enumerate() {
        for v in g.nodes() {
            assert!(est[l_idx][v.index()] >= exact.get(l, v));
        }
    }
    Ok(())
}
