//! Criterion wall-clock wrapper for E3 (Theorem 1.2) (see EXPERIMENTS.md; the round-count
//! tables come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::e3_kssp;
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_ksssp");
    group.sample_size(10);
    group.bench_function("e3_small", |b| b.iter(|| e3_kssp(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
