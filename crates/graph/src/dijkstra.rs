//! Dijkstra's algorithm — the sequential ground truth for every distance the
//! distributed algorithms of the paper compute.
//!
//! Besides plain single-source shortest paths this module provides the
//! lexicographic `(distance, hops)` variant needed for the *shortest path diameter*
//! `SPD(G)` (the paper compares its SSSP algorithm against the `Õ(√SPD)` algorithm
//! of \[3\], so experiments need `SPD` as a workload parameter).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dist::{dist_add, Distance, INFINITY};
use crate::graph::Graph;
use crate::ids::NodeId;

/// Shortest-path distances (and predecessors) from one source.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Distance>,
    pred: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The source of the computation.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// `d(source, v)`, or [`INFINITY`] if unreachable.
    pub fn dist(&self, v: NodeId) -> Distance {
        self.dist[v.index()]
    }

    /// The raw distance array indexed by node.
    pub fn as_slice(&self) -> &[Distance] {
        &self.dist
    }

    /// Predecessor of `v` on a shortest path from the source.
    pub fn predecessor(&self, v: NodeId) -> Option<NodeId> {
        self.pred[v.index()]
    }

    /// Reconstructs a shortest path `source -> v` (inclusive), if `v` is reachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[v.index()] == INFINITY {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.pred[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Largest finite distance from the source (weighted eccentricity).
    pub fn eccentricity(&self) -> Distance {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }
}

/// Single-source shortest paths in `O((n + m) log n)`.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    let mut dist = vec![INFINITY; g.len()];
    let mut pred: Vec<Option<NodeId>> = vec![None; g.len()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source.raw())));
    while let Some(Reverse((d, v_raw))) = heap.pop() {
        let v = NodeId::from(v_raw);
        if d > dist[v.index()] {
            continue;
        }
        for (u, w) in g.neighbors(v) {
            let nd = dist_add(d, w);
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                pred[u.index()] = Some(v);
                heap.push(Reverse((nd, u.raw())));
            }
        }
    }
    ShortestPaths { source, dist, pred }
}

/// Dijkstra truncated at weighted radius `max_dist`: nodes with `d(source, v) >
/// max_dist` keep [`INFINITY`].
pub fn dijkstra_within(g: &Graph, source: NodeId, max_dist: Distance) -> ShortestPaths {
    let mut dist = vec![INFINITY; g.len()];
    let mut pred: Vec<Option<NodeId>> = vec![None; g.len()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source.raw())));
    while let Some(Reverse((d, v_raw))) = heap.pop() {
        let v = NodeId::from(v_raw);
        if d > dist[v.index()] {
            continue;
        }
        for (u, w) in g.neighbors(v) {
            let nd = dist_add(d, w);
            if nd <= max_dist && nd < dist[u.index()] {
                dist[u.index()] = nd;
                pred[u.index()] = Some(v);
                heap.push(Reverse((nd, u.raw())));
            }
        }
    }
    ShortestPaths { source, dist, pred }
}

/// Lexicographic shortest paths: minimizes `(w(P), |P|)`, i.e. among all shortest
/// paths prefers one with the fewest hops.
///
/// Returns `(dist, hops)` per node where `hops[v]` is the minimum hop count over all
/// minimum-weight `source`–`v` paths. `hops` is [`INFINITY`] iff `dist` is.
pub fn dijkstra_lex(g: &Graph, source: NodeId) -> (Vec<Distance>, Vec<Distance>) {
    let mut dist = vec![INFINITY; g.len()];
    let mut hops = vec![INFINITY; g.len()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    hops[source.index()] = 0;
    heap.push(Reverse((0u64, 0u64, source.raw())));
    while let Some(Reverse((d, h, v_raw))) = heap.pop() {
        let v = NodeId::from(v_raw);
        if (d, h) > (dist[v.index()], hops[v.index()]) {
            continue;
        }
        for (u, w) in g.neighbors(v) {
            let nd = dist_add(d, w);
            let nh = h + 1;
            if (nd, nh) < (dist[u.index()], hops[u.index()]) {
                dist[u.index()] = nd;
                hops[u.index()] = nh;
                heap.push(Reverse((nd, nh, u.raw())));
            }
        }
    }
    (dist, hops)
}

/// The *shortest path diameter* `SPD(G)`: the maximum, over all pairs `u, v`, of the
/// minimum hop length of a minimum-weight `u`–`v` path.
///
/// For unweighted graphs `SPD(G) = D(G)`. Returns [`INFINITY`] for disconnected
/// graphs. Cost: `n` lexicographic Dijkstra runs.
pub fn shortest_path_diameter(g: &Graph) -> Distance {
    let mut spd = 0;
    for v in g.nodes() {
        let (dist, hops) = dijkstra_lex(g, v);
        for u in g.nodes() {
            if dist[u.index()] == INFINITY {
                return INFINITY;
            }
            spd = spd.max(hops[u.index()]);
        }
    }
    spd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path, weighted_cycle_with_chord};
    use crate::graph::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3   and   0 -3- 2 -3- 3 ; plus heavy direct edge 0-3.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(3), 1).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(2), 3).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 3).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(3), 10).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn picks_light_path() {
        let g = diamond();
        let sp = dijkstra(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(3)), 2);
        assert_eq!(sp.path_to(NodeId::new(3)).unwrap(), vec![
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(3)
        ]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        let g = b.build().unwrap();
        let sp = dijkstra(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(2)), INFINITY);
        assert!(sp.path_to(NodeId::new(2)).is_none());
    }

    #[test]
    fn truncated_respects_radius() {
        let g = path(6, 2).unwrap(); // weights 2, distances 0,2,4,...
        let sp = dijkstra_within(&g, NodeId::new(0), 5);
        assert_eq!(sp.dist(NodeId::new(2)), 4);
        assert_eq!(sp.dist(NodeId::new(3)), INFINITY);
    }

    #[test]
    fn lex_prefers_fewer_hops() {
        // Two shortest paths of weight 4: 0-1-2-3 (3 hops, w=1+1+2? no) — build explicitly:
        // 0 -2- 3 direct edge of weight 4, and 0-1-2-3 each weight... make both total 4.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2), 1).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 2).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(3), 4).unwrap();
        let g = b.build().unwrap();
        let (dist, hops) = dijkstra_lex(&g, NodeId::new(0));
        assert_eq!(dist[3], 4);
        assert_eq!(hops[3], 1); // prefers the direct edge
    }

    #[test]
    fn spd_exceeds_diameter_on_weighted_cycle() {
        // A cycle with a heavy chord: shortest paths go the long way around, so SPD
        // is much larger than the hop diameter.
        let g = weighted_cycle_with_chord(12, 1, 100).unwrap();
        let spd = shortest_path_diameter(&g);
        assert!(spd >= 6, "spd = {spd}");
    }

    #[test]
    fn spd_equals_diameter_unweighted() {
        let g = path(7, 1).unwrap();
        assert_eq!(shortest_path_diameter(&g), 6);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = path(5, 3).unwrap();
        assert_eq!(dijkstra(&g, NodeId::new(0)).eccentricity(), 12);
    }
}
