//! Experiment harness: every theorem of the paper as a reproducible,
//! table-printing experiment (the E1–E12 index of DESIGN.md §5).
//!
//! The `experiments` binary runs them and prints the rows recorded in
//! EXPERIMENTS.md; the criterion benches in `benches/` wrap the same runners
//! for wall-clock tracking.

#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod table;

pub use experiments::Scale;
