//! Broker-vs-cold bit-identity under concurrency: the serving front-end's
//! core contract, end to end.
//!
//! N client threads push a mixed registry-query workload through one
//! multi-tenant [`Broker`] — batched, cached, coalesced — and every brokered
//! answer must equal the cold `solve()` payload-by-payload: distances,
//! guarantees, and the simulated round bill. The contract must also survive
//! an LRU eviction + re-admission cycle, and overload must always surface as
//! a structured [`ServeError::Overloaded`], never a silent drop.

use hybrid_shortest_paths::graph::generators::grid;
use hybrid_shortest_paths::graph::{Graph, NodeId};
use hybrid_shortest_paths::scenarios::workloads;
use hybrid_shortest_paths::serve::{query_spec, report_digest, Request};
use hybrid_shortest_paths::sim::{HybridConfig, HybridNet};
use hybrid_shortest_paths::{
    solve, Answer, ApspVariant, Broker, BrokerConfig, DiameterCorollary, GraphCatalog,
    KsspCorollary, Query, Report, ServeError, SsspVariant, TenantConfig,
};
use std::collections::HashMap;

const SEED: u64 = 7;

/// The serving benchmark's mixed shape: 8 distinct paper queries.
fn mixed_queries() -> Vec<Query> {
    vec![
        Query::apsp().xi(1.5).build().unwrap(),
        Query::apsp().variant(ApspVariant::Soda20).xi(1.5).build().unwrap(),
        Query::sssp(NodeId::new(0)).xi(1.5).build().unwrap(),
        Query::sssp(NodeId::new(1))
            .variant(SsspVariant::ApproxSoda20 { eps: 0.5 })
            .xi(1.5)
            .build()
            .unwrap(),
        Query::kssp(KsspCorollary::Cor46).random_sources(2).eps(0.5).xi(1.5).build().unwrap(),
        Query::kssp(KsspCorollary::Cor47).random_sources(4).eps(0.5).xi(1.5).build().unwrap(),
        Query::diameter(DiameterCorollary::Cor52).eps(0.5).xi(1.5).build().unwrap(),
        Query::diameter(DiameterCorollary::Cor53).eps(0.5).xi(1.5).build().unwrap(),
    ]
}

/// Full-report equality, answers compared payload-by-payload.
fn assert_reports_identical(cold: &Report, served: &Report, context: &str) {
    assert_eq!(cold.rounds, served.rounds, "{context}: rounds");
    assert_eq!(cold.global_messages, served.global_messages, "{context}: global messages");
    assert_eq!(cold.guarantee, served.guarantee, "{context}: guarantee");
    match (&cold.answer, &served.answer) {
        (Answer::Distances(a), Answer::Distances(b)) => {
            assert_eq!(a.as_flat(), b.as_flat(), "{context}: distance matrix")
        }
        (Answer::DistanceRow { dist: a, .. }, Answer::DistanceRow { dist: b, .. }) => {
            assert_eq!(a, b, "{context}: distance row")
        }
        (
            Answer::DistanceRows { sources: sa, est: a },
            Answer::DistanceRows { sources: sb, est: b },
        ) => {
            assert_eq!(sa, sb, "{context}: sources");
            assert_eq!(a, b, "{context}: estimate rows");
        }
        (
            Answer::Diameter { estimate: a, exact_local: xa },
            Answer::Diameter { estimate: b, exact_local: xb },
        ) => {
            assert_eq!(a, b, "{context}: diameter estimate");
            assert_eq!(xa, xb, "{context}: exact-local flag");
        }
        _ => panic!("{context}: answer shapes differ"),
    }
}

/// Cold references for every (graph, query) pair, keyed by the canonical
/// query spec — computed up front with fresh nets, before the broker exists.
fn cold_references(
    graphs: &[(&'static str, &Graph)],
    queries: &[Query],
) -> HashMap<(&'static str, String), Report> {
    let mut refs = HashMap::new();
    for (name, g) in graphs {
        for q in queries {
            let mut net = HybridNet::new(g, HybridConfig::default());
            let report = solve(&mut net, q, SEED).expect("cold reference solve");
            refs.insert((*name, query_spec(q)), report);
        }
    }
    refs
}

/// Four client threads, two tenants, two graphs, eight query kinds: every
/// brokered response equals its cold reference payload-by-payload, nothing
/// is shed at ample depth, and every response is verified online.
#[test]
fn concurrent_clients_get_cold_solve_answers_bit_identically() {
    let er = workloads::er(48, 12.0, 4, 3);
    let mesh = grid(7, 7, 1).unwrap();
    let graphs: Vec<(&'static str, &Graph)> = vec![("er", &er), ("mesh", &mesh)];
    let queries = mixed_queries();
    let refs = cold_references(&graphs, &queries);

    let mut catalog = GraphCatalog::new();
    catalog.insert("er", er.clone());
    catalog.insert("mesh", mesh.clone());
    let broker = Broker::new(&catalog, BrokerConfig::new(SEED));
    for tenant in ["acme", "globex"] {
        broker.register_tenant(tenant, TenantConfig::new(8)).unwrap();
    }

    let clients = 4usize;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let broker = &broker;
            let queries = &queries;
            let refs = &refs;
            scope.spawn(move || {
                for r in 0..2 * queries.len() {
                    let graph = if (c + r) % 2 == 0 { "er" } else { "mesh" };
                    let query = queries[r % queries.len()].clone();
                    let spec = query_spec(&query);
                    let req = Request {
                        tenant: if c % 2 == 0 { "acme" } else { "globex" }.into(),
                        graph: graph.into(),
                        seed: None,
                        query,
                        deadline_ms: None,
                        fingerprint: None,
                    };
                    let resp = broker
                        .serve(&req)
                        .unwrap_or_else(|e| panic!("client {c} req {r} ({graph} {spec}): {e}"));
                    let cold = &refs[&(graph, spec.clone())];
                    assert_reports_identical(cold, &resp.report, &format!("{graph} {spec}"));
                    assert_eq!(resp.digest, report_digest(cold), "{graph} {spec}: digest");
                    assert!(resp.verified, "{graph} {spec}: online verification ran");
                }
            });
        }
    });

    let stats = broker.stats();
    let issued = (clients * 2 * queries.len()) as u64;
    assert_eq!(stats.served, issued, "ample depth serves everything");
    assert_eq!(stats.shed, 0, "nothing shed at depth 8");
    assert_eq!(stats.mismatches, 0, "online verification found no divergence");
    assert_eq!(stats.verified, issued, "every response was verified");
}

/// Bit-identity survives the cache lifecycle: a 1-byte budget forces an
/// eviction on every graph switch, and re-admitted sessions (cold preamble
/// recomputed from scratch) must still produce the exact cold-solve reports.
#[test]
fn eviction_and_readmission_preserve_bit_identity() {
    let er = workloads::er(48, 12.0, 4, 3);
    let mesh = grid(7, 7, 1).unwrap();
    let graphs: Vec<(&'static str, &Graph)> = vec![("er", &er), ("mesh", &mesh)];
    let queries = mixed_queries();
    let refs = cold_references(&graphs, &queries);

    let mut catalog = GraphCatalog::new();
    catalog.insert("er", er.clone());
    catalog.insert("mesh", mesh.clone());
    let mut cfg = BrokerConfig::new(SEED);
    cfg.session_budget_bytes = 1;
    let broker = Broker::new(&catalog, cfg);
    broker.register_tenant("t", TenantConfig::new(2)).unwrap();

    // Alternate graphs per request so every acquisition after the first
    // evicts the other session; then swing back to re-admit what was evicted.
    for (r, q) in queries.iter().chain(queries.iter()).enumerate() {
        let graph = if r % 2 == 0 { "er" } else { "mesh" };
        let req = Request::new("t", graph, q.clone());
        let resp = broker.serve(&req).expect("broker serve");
        let spec = query_spec(q);
        let cold = &refs[&(graph, spec.clone())];
        assert_reports_identical(cold, &resp.report, &format!("evict-cycle {graph} {spec}"));
        assert!(resp.verified);
    }
    let stats = broker.stats();
    assert!(stats.sessions_evicted > 0, "the 1-byte budget must actually evict");
    assert_eq!(stats.resident_sessions, 1, "only the most recent session survives");
    assert_eq!(stats.mismatches, 0);
}

/// Overflow is never silent: a zero-depth tenant sheds with the structured
/// error, the per-tenant and broker-wide counters both record it, and a
/// healthy tenant on the same broker is unaffected.
#[test]
fn overload_always_surfaces_as_structured_shed() {
    let mut catalog = GraphCatalog::new();
    catalog.insert("g", grid(5, 5, 1).unwrap());
    let broker = Broker::new(&catalog, BrokerConfig::new(SEED));
    broker.register_tenant("full", TenantConfig::new(0)).unwrap();
    broker.register_tenant("fine", TenantConfig::new(2)).unwrap();
    let q = Query::apsp().xi(1.5).build().unwrap();
    let overloaded = Request::new("full", "g", q.clone());
    for _ in 0..3 {
        let err = broker.serve(&overloaded).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { tenant: "full".into(), depth: 0 });
    }
    let ok = Request::new("fine", "g", q);
    assert!(broker.serve(&ok).unwrap().verified);
    let stats = broker.stats();
    assert_eq!((stats.served, stats.shed), (1, 3), "all overflow accounted as shed");
    assert_eq!(broker.tenant_shed("full"), Some(3));
    assert_eq!(broker.tenant_shed("fine"), Some(0));
}
