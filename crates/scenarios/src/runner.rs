//! The scenario runner: executes one scenario end to end (graph → net →
//! algorithm → golden verification), or a whole batch in parallel on scoped
//! threads — mirroring `hybrid_graph::dijkstra::par_dist_rows`, with one
//! worker pool pulling scenarios off a shared index.
//!
//! Runs are deterministic per `(scenario, seed, n)`: every random stream
//! (graph, algorithm, faults) derives from the scenario seed, and threads
//! never share RNG state, so the parallel schedule cannot change any result.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use hybrid_core::session::{Session, SessionConfig};
use hybrid_core::solver::solve;
use hybrid_graph::Graph;
use hybrid_sim::Recorder;

use crate::churn::{churn_batch, step_seed};
use crate::model::{ChurnPlan, Scenario};
use crate::verify::{check_error, check_report, Verdict, Verification};

/// How the runner executes a scenario's suite: a fresh `solve` per run (the
/// historical path) or through a shared-preprocessing serving
/// [`Session`] pinned to the scenario's `(seed, ξ, faults)`. Both paths are
/// bit-identical per the session contract; running the smoke matrix under
/// both is the CI guard for that equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One cold `solve` per scenario run.
    #[default]
    Fresh,
    /// Serve the suite through a [`hybrid_core::session::Session`].
    Session,
}

/// Structured result of one scenario run — what the JSON sink and the tables
/// consume.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Registry name.
    pub scenario: String,
    /// Root seed of the run.
    pub seed: u64,
    /// Requested node count (families may round up slightly).
    pub n: usize,
    /// Graph family label.
    pub family: &'static str,
    /// Fault plan label.
    pub faults: &'static str,
    /// Algorithm suite label.
    pub suite: &'static str,
    /// Golden verification verdict.
    pub verdict: Verdict,
    /// Verification detail (what was checked / what went wrong).
    pub detail: String,
    /// Simulated HYBRID rounds consumed — the full run for a completed
    /// suite, the partial count for a structured-error abort, 0 only when the
    /// run panicked.
    pub rounds: u64,
    /// Global messages delivered.
    pub global_messages: u64,
    /// Global messages removed by the fault plan.
    pub dropped_messages: u64,
    /// Wall-clock nanoseconds of the run (graph build + algorithm +
    /// verification).
    pub wall_ns: u128,
    /// Number of structured trace events the run emitted (0 only when the
    /// run panicked before tracing could start).
    pub trace_events: u64,
    /// Name of the phase that consumed the most simulated rounds
    /// (lexicographically first on ties; empty when nothing was charged).
    pub top_phase: String,
    /// Rounds charged under [`ScenarioReport::top_phase`].
    pub top_phase_rounds: u64,
}

impl ScenarioReport {
    /// `true` if the verdict is [`Verdict::Pass`].
    pub fn passed(&self) -> bool {
        self.verdict == Verdict::Pass
    }

    /// The deterministic portion of the report (everything except wall-clock
    /// time) — what reproducibility tests compare.
    pub fn deterministic_key(&self) -> (String, u64, usize, &'static str, String, u64, u64, u64) {
        (
            self.scenario.clone(),
            self.seed,
            self.n,
            self.verdict.as_str(),
            self.detail.clone(),
            self.rounds,
            self.global_messages,
            self.dropped_messages,
        )
    }
}

/// Executes the scenario's algorithm suite on `net` through the solver facade
/// and verifies the result, returning `(rounds, verification)`. The suite's
/// typed [`hybrid_core::solver::Query`] replaces the per-algorithm dispatch
/// ladder, and verification reads the run's contract off
/// [`hybrid_core::solver::Report::guarantee`].
fn run_suite(sc: &Scenario, g: &Graph, net: &mut hybrid_sim::HybridNet<'_>) -> (u64, Verification) {
    let contract = sc.contract();
    match solve(net, &sc.suite.query(), sc.seed) {
        Ok(report) => (report.rounds, check_report(g, &report, contract)),
        Err(e) => (net.rounds(), check_error(&e, contract, net.metrics().dropped_messages)),
    }
}

/// Executes the suite through a serving [`Session`] pinned to the scenario's
/// `(seed, ξ, network, faults)` — the alternate engine whose reports must be
/// bit-identical to [`run_suite`]'s.
fn run_suite_session(sc: &Scenario, g: &Graph) -> (u64, Verification, u64, u64, Recorder) {
    let contract = sc.contract();
    let cfg = SessionConfig {
        seed: sc.seed,
        xi: sc.suite.xi(),
        net: sc.faults.config(),
        faults: sc.faults.sim_plan(g.len(), sc.seed),
        round_threads: None,
        ..SessionConfig::new(sc.seed)
    };
    let session = Session::new(g, cfg).expect("registry scenario configs are valid");
    let (result, metrics, rec) = session.solve_traced(&sc.suite.query());
    let mut verification = match &result {
        Ok(report) => check_report(g, report, contract),
        Err(e) => check_error(e, contract, metrics.dropped_messages),
    };
    reconcile_into(&rec, &metrics, &mut verification);
    let rounds = match result {
        Ok(report) => report.rounds,
        Err(_) => metrics.rounds,
    };
    (rounds, verification, metrics.global_messages, metrics.dropped_messages, rec)
}

/// Replays a [`ChurnPlan`] through epoch-versioned sessions: one query on
/// the epoch-0 graph, then `steps` rounds of *delta → migrate → query*,
/// where the migration goes through [`Session::apply_delta`] (incremental
/// patch or verified full re-prepare — its rounds are billed into the run's
/// total) and **every** query is held to two contracts at once:
///
/// 1. the scenario's golden contract against the graph version live at that
///    point (strict / lossy / must-recover, exactly as a static run), and
/// 2. bit-identity against a *cold* [`Session::new`] on that same graph
///    version — the churn stack must never leak stale state across epochs.
///
/// Both engines replay churn scenarios this way: churn is inherently a
/// session workload (there is nothing "fresh" about an incremental epoch),
/// and the cold side of contract 2 is exactly the fresh path's solve.
fn run_churn_session(
    sc: &Scenario,
    g0: &Graph,
    plan: ChurnPlan,
) -> (u64, Verification, u64, u64, Recorder) {
    let contract = sc.contract();
    let cfg = SessionConfig {
        seed: sc.seed,
        xi: sc.suite.xi(),
        net: sc.faults.config(),
        faults: sc.faults.sim_plan(g0.len(), sc.seed),
        round_threads: None,
        ..SessionConfig::new(sc.seed)
    };
    let query = sc.suite.query();
    let mut session =
        Session::new(g0, cfg.clone()).expect("registry churn scenario configs are valid");
    let mut graph = g0.clone();
    let (mut rounds, mut gm, mut dm) = (0u64, 0u64, 0u64);
    let mut rec = Recorder::default();
    for step in 0..=plan.steps {
        // Mutate first on every epoch after 0, so the final query runs on the
        // most-churned graph.
        if step > 0 {
            let (batch, next) =
                churn_batch(&graph, step_seed(sc.seed, step - 1), plan.ops_per_step);
            let (migrated, repair) = match session.apply_delta(&batch) {
                Ok(pair) => pair,
                Err(e) => {
                    let v = Verification::fail(format!("apply_delta failed at step {step}: {e}"));
                    return (rounds, v, gm, dm, rec);
                }
            };
            if migrated.epoch() != step as u64 {
                let v = Verification::fail(format!(
                    "epoch drift at step {step}: session reports {}",
                    migrated.epoch()
                ));
                return (rounds, v, gm, dm, rec);
            }
            session = migrated;
            graph = next;
            rounds += repair.rounds;
        }
        let (result, metrics, step_rec) = session.solve_traced(&query);
        let mut verification = match &result {
            Ok(report) => check_report(&graph, report, contract),
            Err(e) => check_error(e, contract, metrics.dropped_messages),
        };
        reconcile_into(&step_rec, &metrics, &mut verification);
        rounds += match &result {
            Ok(report) => report.rounds,
            Err(_) => metrics.rounds,
        };
        gm += metrics.global_messages;
        dm += metrics.dropped_messages;
        rec = step_rec;
        if verification.verdict != Verdict::Pass {
            verification.detail = format!("churn step {step}: {}", verification.detail);
            return (rounds, verification, gm, dm, rec);
        }
        // Contract 2: bit-identity against a cold session on this epoch's
        // graph — answers, guarantees, and round bills, or the identical
        // structured error.
        let cold = Session::new(&graph, cfg.clone()).expect("cold churn session config is valid");
        let (cold_result, _) = cold.solve_with_metrics(&query);
        if format!("{result:?}") != format!("{cold_result:?}") {
            let v = Verification::fail(format!(
                "churn step {step}: epoch-{step} answer diverged from a cold solve on the \
                 live graph version"
            ));
            return (rounds, v, gm, dm, rec);
        }
    }
    let queries = plan.steps + 1;
    let v = Verification::pass(format!(
        "churn replay: {queries} queries across {queries} graph versions, each verified \
         under the {} contract and bit-identical to a cold solve on its version",
        contract.label()
    ));
    (rounds, v, gm, dm, rec)
}

/// Folds a trace-reconciliation failure into the run's verdict: a run whose
/// trace totals diverge from its metrics fails even if its answer verified —
/// self-verifying observability is part of the contract.
fn reconcile_into(rec: &Recorder, metrics: &hybrid_sim::Metrics, verification: &mut Verification) {
    if let Err(e) = rec.reconcile(metrics) {
        let detail = format!("trace reconciliation failed: {e}");
        if verification.verdict == Verdict::Pass {
            *verification = Verification::fail(detail);
        } else {
            verification.detail.push_str("; ");
            verification.detail.push_str(&detail);
        }
    }
}

/// Runs one scenario at size ≈ `n` (the [`Engine::Fresh`] path); see
/// [`run_scenario_with`].
pub fn run_scenario(sc: &Scenario, n: usize) -> ScenarioReport {
    run_scenario_with(sc, n, Engine::Fresh)
}

/// Runs one scenario at size ≈ `n` under the chosen engine: builds the
/// graph, wires the fault plan, executes the suite, and verifies against
/// ground truth. Panics inside the algorithm are caught and reported as
/// [`Verdict::Fail`] — a fault plan must surface as a structured error,
/// never a crash.
///
/// Every run is traced, and the trace must [`Recorder::reconcile`] exactly
/// against the run's metrics — a mismatch fails the verdict. Tracing never
/// changes answers or the round bill (pinned by the determinism suite), so
/// reports are identical to an untraced run's.
pub fn run_scenario_with(sc: &Scenario, n: usize, engine: Engine) -> ScenarioReport {
    run_scenario_inner(sc, n, engine).0
}

/// Like [`run_scenario_with`] (always the [`Engine::Fresh`] path), returning
/// the run's trace recorder alongside the report — the export path behind
/// `experiments --trace`.
pub fn run_scenario_traced(sc: &Scenario, n: usize) -> (ScenarioReport, Recorder) {
    let (report, rec) = run_scenario_inner(sc, n, Engine::Fresh);
    (report, rec.unwrap_or_default())
}

fn run_scenario_inner(
    sc: &Scenario,
    n: usize,
    engine: Engine,
) -> (ScenarioReport, Option<Recorder>) {
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let g = sc.graph(n);
        if let Some(plan) = sc.churn {
            return run_churn_session(sc, &g, plan);
        }
        match engine {
            Engine::Fresh => {
                let mut net = sc.net(&g);
                net.set_trace(Recorder::new());
                let (rounds, mut verification) = run_suite(sc, &g, &mut net);
                let rec = net.take_trace().expect("recorder installed above");
                reconcile_into(&rec, net.metrics(), &mut verification);
                let m = net.metrics();
                (rounds, verification, m.global_messages, m.dropped_messages, rec)
            }
            Engine::Session => run_suite_session(sc, &g),
        }
    }));
    let (rounds, verification, global_messages, dropped_messages, rec) = match result {
        Ok(r) => {
            let (rounds, verification, gm, dm, rec) = r;
            (rounds, verification, gm, dm, Some(rec))
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (0, Verification::fail(format!("panicked: {msg}")), 0, 0, None)
        }
    };
    let (trace_events, top_phase, top_phase_rounds) = match &rec {
        Some(rec) => {
            let totals = rec.totals();
            let mut top: Option<(&str, u64)> = None;
            for (name, stats) in &totals.phases {
                if top.is_none_or(|(_, r)| stats.rounds > r) {
                    top = Some((name.as_str(), stats.rounds));
                }
            }
            let (name, rounds) = top.unwrap_or(("", 0));
            (rec.len() as u64, name.to_string(), rounds)
        }
        None => (0, String::new(), 0),
    };
    let report = ScenarioReport {
        scenario: sc.name.to_string(),
        seed: sc.seed,
        n,
        family: sc.family.label(),
        faults: sc.faults.label(),
        suite: sc.suite.label(),
        verdict: verification.verdict,
        detail: verification.detail,
        rounds,
        global_messages,
        dropped_messages,
        wall_ns: start.elapsed().as_nanos(),
        trace_events,
        top_phase,
        top_phase_rounds,
    };
    (report, rec)
}

/// Worker-thread count: `HYBRID_SCENARIO_THREADS` override, else the machine's
/// parallelism, capped at the batch size.
fn worker_count(jobs: usize) -> usize {
    let available = std::env::var("HYBRID_SCENARIO_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
    available.min(jobs).max(1)
}

/// Runs every scenario in `batch` at size ≈ `n` on scoped worker threads and
/// returns the reports in input order (the [`Engine::Fresh`] path).
pub fn run_scenarios(batch: &[&Scenario], n: usize) -> Vec<ScenarioReport> {
    run_scenarios_with(batch, n, Engine::Fresh)
}

/// Runs every scenario in `batch` at size ≈ `n` under the chosen engine on
/// scoped worker threads and returns the reports in input order. Independent
/// scenarios never share state, so the output is identical to running them
/// sequentially.
pub fn run_scenarios_with(batch: &[&Scenario], n: usize, engine: Engine) -> Vec<ScenarioReport> {
    let jobs = batch.len();
    if jobs == 0 {
        return Vec::new();
    }
    let threads = worker_count(jobs);
    let reports: Vec<Mutex<Option<ScenarioReport>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    if threads <= 1 {
        return batch.iter().map(|sc| run_scenario_with(sc, n, engine)).collect();
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let report = run_scenario_with(batch[i], n, engine);
                *reports[i].lock().expect("no poisoned slots") = Some(report);
            });
        }
    });
    reports
        .into_iter()
        .map(|slot| slot.into_inner().expect("lock").expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AlgorithmSuite, FaultPlan, GraphFamily, WeightModel};
    use hybrid_core::solver::DiameterCorollary;

    fn tiny(name: &'static str, suite: AlgorithmSuite) -> Scenario {
        Scenario {
            name,
            tags: &[],
            family: GraphFamily::SquareGrid,
            weights: WeightModel::Unit,
            faults: FaultPlan::None,
            suite,
            seed: 11,
            default_n: 36,
            churn: None,
        }
    }

    #[test]
    fn single_run_passes_and_reports() {
        let sc = tiny("t-apsp", AlgorithmSuite::Apsp { xi: 1.5 });
        let r = run_scenario(&sc, 36);
        assert!(r.passed(), "{}: {}", r.scenario, r.detail);
        assert!(r.rounds > 0);
        assert!(r.global_messages > 0);
        assert_eq!(r.dropped_messages, 0);
        assert_eq!(r.family, "square-grid");
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let scenarios = [
            tiny("t-apsp", AlgorithmSuite::Apsp { xi: 1.5 }),
            tiny("t-sssp", AlgorithmSuite::Sssp { xi: 1.5 }),
            tiny(
                "t-diam",
                AlgorithmSuite::Diameter { cor: DiameterCorollary::Cor52, eps: 0.5, xi: 1.0 },
            ),
        ];
        let batch: Vec<&Scenario> = scenarios.iter().collect();
        let par = run_scenarios(&batch, 36);
        let seq: Vec<ScenarioReport> = batch.iter().map(|sc| run_scenario(sc, 36)).collect();
        assert_eq!(par.len(), 3);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.deterministic_key(), s.deterministic_key());
            assert!(p.passed(), "{}: {}", p.scenario, p.detail);
        }
    }

    #[test]
    fn session_engine_matches_fresh_engine() {
        let scenarios = [
            tiny("t-apsp", AlgorithmSuite::Apsp { xi: 1.5 }),
            tiny("t-sssp", AlgorithmSuite::Sssp { xi: 1.5 }),
            tiny(
                "t-diam",
                AlgorithmSuite::Diameter { cor: DiameterCorollary::Cor52, eps: 0.5, xi: 1.0 },
            ),
        ];
        for sc in &scenarios {
            let fresh = run_scenario_with(sc, 36, Engine::Fresh);
            let session = run_scenario_with(sc, 36, Engine::Session);
            assert_eq!(fresh.deterministic_key(), session.deterministic_key(), "{}", sc.name);
            assert!(session.passed(), "{}: {}", session.scenario, session.detail);
        }
    }

    #[test]
    fn panics_become_fail_verdicts() {
        // An impossible family configuration: ThinGrid with more rows than
        // nodes panics inside the generator assertions.
        let mut sc = tiny("t-bad", AlgorithmSuite::Apsp { xi: 1.5 });
        sc.family = GraphFamily::BarabasiAlbert { attach: 0 };
        let r = run_scenario(&sc, 16);
        assert_eq!(r.verdict, Verdict::Fail);
        assert!(r.detail.contains("panicked"), "{}", r.detail);
    }
}
