//! Umbrella crate for the reproduction of Kuhn & Schneider,
//! *Computing Shortest Paths and Diameter in the Hybrid Network Model* (PODC 2020).
//!
//! This crate re-exports the workspace members so that examples and integration
//! tests can address the whole system through one dependency:
//!
//! * [`graph`] — graph substrate (types, generators, reference algorithms,
//!   skeletons, lower-bound constructions).
//! * [`sim`] — the HYBRID communication-model simulator (round clock, NCC global
//!   channel with congestion enforcement, LOCAL phase accounting).
//! * [`clique`] — the congested-clique substrate (Lenzen-routing cost model and
//!   CLIQUE algorithms used as plugins by the paper's framework).
//! * [`core`] — the paper's algorithms: token routing, APSP, k-SSP, SSSP,
//!   diameter, and the lower-bound experiment harnesses.
//! * [`scenarios`] — the scenario engine: declarative workload registry,
//!   fault injection, parallel runner, and golden verification.
//!
//! The front door to all of the paper's algorithms is the [`solver`] facade:
//! describe *what* to compute as a typed, validated [`Query`], run it with
//! [`solve`], and read the answer plus its paper-level contract off the
//! uniform [`Report`].
//!
//! # Example
//!
//! ```
//! use hybrid_shortest_paths::graph::generators::grid;
//! use hybrid_shortest_paths::graph::NodeId;
//! use hybrid_shortest_paths::sim::{HybridConfig, HybridNet};
//! use hybrid_shortest_paths::{solve, Guarantee, Query};
//!
//! // A 6×6 grid fabric, simulated under the HYBRID model.
//! let g = grid(6, 6, 1).unwrap();
//! let mut net = HybridNet::new(&g, HybridConfig::default());
//!
//! // Exact APSP (Theorem 1.1), validated at construction.
//! let query = Query::apsp().xi(1.5).build().unwrap();
//! let report = solve(&mut net, &query, 7).unwrap();
//!
//! assert_eq!(report.label(), "apsp-thm11");
//! assert_eq!(report.guarantee, Guarantee::Exact);
//! let dist = report.distances().expect("APSP answers with a matrix");
//! assert_eq!(dist.get(NodeId::new(0), NodeId::new(35)), 10, "corner to corner");
//! assert!(report.rounds > 0 && report.global_messages > 0);
//! ```

#![warn(missing_docs)]

pub use clique_sim as clique;
pub use hybrid_core as core;
pub use hybrid_core::solver;
pub use hybrid_core::solver::{
    solve, Answer, ApspVariant, DiameterCorollary, Guarantee, KsspCorollary, Query, QueryError,
    Report, SourceSet, SsspVariant,
};
pub use hybrid_graph as graph;
pub use hybrid_scenarios as scenarios;
pub use hybrid_sim as sim;
