//! Parallel-vs-sequential determinism suite (PR 4 satellite): the
//! thread-sharded round engine must be **bit-identical** to the sequential
//! engine — same distances, same rounds, same global/dropped message counts —
//! for every workload in the scenario registry and for direct solver runs.
//!
//! The engine is gated by `HYBRID_ROUND_THREADS` (read at net construction)
//! or [`HybridNet::set_round_threads`]; both paths are exercised here.

use hybrid_shortest_paths::graph::Graph;
use hybrid_shortest_paths::scenarios::{registry, run_scenario, workloads};
use hybrid_shortest_paths::sim::{HybridConfig, HybridNet};
use hybrid_shortest_paths::{solve, DiameterCorollary, KsspCorollary, Query};

/// Node count for the registry sweep: large enough that the biggest
/// exchanges clear the sharding threshold (≥ 1024 messages per exchange), so
/// the parallel scatter genuinely executes under `HYBRID_ROUND_THREADS=4`.
const N: usize = 160;

/// `set_var` concurrent with `env::var` from worker threads is an
/// unsynchronized setenv/getenv pair, so the two tests in this binary must
/// never overlap: both hold this lock.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_round_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("HYBRID_ROUND_THREADS", threads.to_string());
    let out = f();
    std::env::remove_var("HYBRID_ROUND_THREADS");
    out
}

#[test]
fn every_registry_scenario_is_bit_identical_across_round_threads() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for sc in registry() {
        let seq = with_round_threads(1, || run_scenario(sc, N));
        let par = with_round_threads(4, || run_scenario(sc, N));
        assert_eq!(
            seq.deterministic_key(),
            par.deterministic_key(),
            "scenario {} diverges under HYBRID_ROUND_THREADS=4",
            sc.name
        );
    }
}

/// Direct solver runs compared answer-for-answer (full distance matrices and
/// rows, not just the report counters), using the programmatic
/// `set_round_threads` override.
#[test]
fn solver_answers_are_bit_identical_across_round_threads() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let g: Graph = workloads::er(200, 12.0, 4, 3);
    let queries = vec![
        Query::apsp().xi(1.5).build().expect("valid"),
        Query::apsp()
            .variant(hybrid_shortest_paths::ApspVariant::Soda20)
            .xi(1.5)
            .build()
            .expect("valid"),
        Query::sssp(hybrid_shortest_paths::graph::NodeId::new(7)).xi(1.5).build().expect("valid"),
        Query::kssp(KsspCorollary::Cor47).random_sources(8).eps(0.5).build().expect("valid"),
        Query::diameter(DiameterCorollary::Cor52).eps(0.5).xi(1.2).build().expect("valid"),
    ];
    for query in &queries {
        let run = |threads: usize| {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            net.set_round_threads(threads);
            let report = solve(&mut net, query, 21).expect("solver run");
            (
                format!("{:?}", report.answer),
                report.rounds,
                report.global_messages,
                report.dropped_messages,
                report.skeleton_size,
            )
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.1, par.1, "{}: rounds diverge", query.label());
        assert_eq!(seq.2, par.2, "{}: message counts diverge", query.label());
        assert_eq!(seq.3, par.3, "{}: drop counts diverge", query.label());
        assert_eq!(seq.4, par.4, "{}: skeleton sizes diverge", query.label());
        assert_eq!(seq.0, par.0, "{}: answers diverge", query.label());
    }
}
