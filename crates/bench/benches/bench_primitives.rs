//! Criterion wall-clock wrapper for E8-E11 (Lemmas 2.1, 2.2, C.1/C.2, D.2) (see EXPERIMENTS.md; the round-count
//! tables come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::{e10_skeletons, e11_congestion, e8_helper_sets, e9_ruling_sets};
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_primitives");
    group.sample_size(10);
    group.bench_function("e8_small", |b| b.iter(|| e8_helper_sets(Scale::Small)));
    group.bench_function("e9_small", |b| b.iter(|| e9_ruling_sets(Scale::Small)));
    group.bench_function("e10_small", |b| b.iter(|| e10_skeletons(Scale::Small)));
    group.bench_function("e11_small", |b| b.iter(|| e11_congestion(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
