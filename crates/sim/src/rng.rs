//! Deterministic seed derivation.
//!
//! Every protocol in this repository takes a single `u64` seed; per-node and
//! per-subprotocol RNGs are derived with a SplitMix64 step so that executions are
//! reproducible and sub-seeds are statistically independent.

/// Derives a sub-seed from `(seed, salt)` with the SplitMix64 finalizer.
///
/// # Example
///
/// ```
/// use hybrid_sim::derive_seed;
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0)); // deterministic
/// ```
pub fn derive_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn salts_spread() {
        let seeds: HashSet<u64> = (0..1000).map(|s| derive_seed(123, s)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn seeds_spread() {
        let seeds: HashSet<u64> = (0..1000).map(|s| derive_seed(s, 5)).collect();
        assert_eq!(seeds.len(), 1000);
    }
}
