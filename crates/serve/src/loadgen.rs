//! The closed-loop load generator: N synchronous client threads driving a
//! [`Broker`] with a deterministic tenant/graph/query mix. Every choice a
//! client makes derives from SplitMix64 streams of the spec seed — including
//! the retry schedule — so two runs issue the *identical* request sequence
//! per client; only wall-clock latency (and hence the percentiles) is
//! nondeterministic.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use hybrid_core::solver::{Guarantee, Query};
use hybrid_graph::DeltaBatch;
use hybrid_sim::derive_seed;

use crate::broker::{Broker, BrokerStats, Request, ServeError};

/// One churn operation the load generator can inject mid-run: an `UPDATE` of
/// `graph` issued on behalf of `tenant`, applying `batch`. Batches that stay
/// valid under repetition (reweights of existing edges) are the natural fit —
/// the generator may pick the same update many times.
#[derive(Debug, Clone)]
pub struct LoadUpdate {
    /// Tenant the update is issued as (must be admitted by the broker).
    pub tenant: String,
    /// Catalog name of the graph to mutate.
    pub graph: String,
    /// The delta applied on each injection.
    pub batch: DeltaBatch,
}

/// One closed-loop workload: who asks what, how hard, under which seed.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Workload name (lands in the benchmark record).
    pub name: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues back-to-back (closed loop: the next
    /// request starts when the previous response lands).
    pub requests_per_client: usize,
    /// Tenant mix — client i's r-th request picks deterministically.
    pub tenants: Vec<String>,
    /// Graph mix (catalog names).
    pub graphs: Vec<String>,
    /// Query mix.
    pub queries: Vec<Query>,
    /// Root seed of every client's choice stream.
    pub seed: u64,
    /// Client-side retries on [`ServeError::Overloaded`] before counting the
    /// request as shed. The retry *schedule* is deterministic (exponential
    /// backoff from `retry_backoff_ms`); retries never consume a draw from
    /// the choice stream, so they don't perturb the request mix.
    pub retries: u32,
    /// Base backoff before retry `k` (1-based): `retry_backoff_ms << (k-1)`,
    /// capped at 16× the base. Zero disables the sleep but keeps the retry.
    pub retry_backoff_ms: u64,
    /// Deadline budget attached to every request (`None`: tenant default).
    pub deadline_ms: Option<u64>,
    /// Churn mix: updates a client may inject between requests. Empty
    /// disables churn entirely — and because updates draw from a *disjoint*
    /// SplitMix64 stream (`derive_seed(client_stream, u64::MAX)`), enabling
    /// them never perturbs the tenant/graph/query draws of the request mix.
    pub updates: Vec<LoadUpdate>,
    /// Inject one update before every `update_every`-th request of each
    /// client (0 disables injection even when `updates` is non-empty).
    pub update_every: usize,
}

/// Outcome of a load run: latency percentiles, throughput, shed rate, and
/// the broker's counters at the end of the run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The spec's workload name.
    pub name: String,
    /// Client thread count.
    pub clients: usize,
    /// Requests issued in total.
    pub issued: u64,
    /// Requests served successfully.
    pub served: u64,
    /// Requests shed with [`ServeError::Overloaded`] after exhausting their
    /// retries.
    pub shed: u64,
    /// Requests shed with [`ServeError::DeadlineExceeded`] (never retried —
    /// the budget is already burned).
    pub deadline_shed: u64,
    /// Requests rejected with [`ServeError::BreakerOpen`] (expected under
    /// chaos; not a failure).
    pub breaker_rejected: u64,
    /// Served responses that carried a `Guarantee::Degraded` — verified
    /// bit-identical answers with an explicit downgrade.
    pub degraded_served: u64,
    /// Retry attempts spent across all clients.
    pub retries: u64,
    /// Requests that failed any other way (bit-identity violations, solver
    /// errors, contained panics — a healthy run has zero).
    pub failed: u64,
    /// Graph updates injected successfully by clients (0 without churn).
    pub updates_applied: u64,
    /// Wall-clock duration of the whole run in nanoseconds.
    pub wall_ns: u64,
    /// Median served-request latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Served throughput: `served / wall` in queries per second — the
    /// saturation rate of a closed loop at this client count.
    pub qps: f64,
    /// `shed / issued` (0 when nothing was issued).
    pub shed_rate: f64,
    /// Sum of simulated HYBRID rounds across served responses. Deterministic
    /// — pinned by bit-identity — *without* churn; with updates enabled, a
    /// query races the epoch bump and may be served on either side of it, so
    /// only per-epoch bit-identity (not this sum) is pinned.
    pub rounds_total: u64,
    /// Broker counters at the end of the run.
    pub stats: BrokerStats,
}

/// Latency percentile over a sorted sample: nearest-rank on `p ∈ [0, 1]`.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-client outcome counters, merged at the end of the run.
#[derive(Default, Clone, Copy)]
struct Tally {
    served: u64,
    shed: u64,
    deadline_shed: u64,
    breaker_rejected: u64,
    degraded: u64,
    retries: u64,
    failed: u64,
    updates: u64,
    rounds: u64,
}

/// Runs `spec` against `broker` and gathers the report. Client i's request r
/// draws its tenant/graph/query from `derive_seed(derive_seed(seed, i), r)`
/// — disjoint SplitMix64 streams per client, deterministic across runs.
///
/// Overload ([`ServeError::Overloaded`]) is an *expected* outcome: the client
/// retries up to [`LoadSpec::retries`] times with deterministic exponential
/// backoff, then counts the request as shed. Deadline and breaker rejections
/// are counted in their own buckets; every other error counts as failed and
/// is kept out of the latency sample.
pub fn run_load(broker: &Broker<'_>, spec: &LoadSpec) -> LoadReport {
    assert!(!spec.tenants.is_empty(), "load spec needs at least one tenant");
    assert!(!spec.graphs.is_empty(), "load spec needs at least one graph");
    assert!(!spec.queries.is_empty(), "load spec needs at least one query");
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let outcomes: Mutex<Tally> = Mutex::new(Tally::default());
    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..spec.clients {
            let latencies = &latencies;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let stream = derive_seed(spec.seed, client as u64);
                let mut local_lat = Vec::with_capacity(spec.requests_per_client);
                let mut t = Tally::default();
                // Churn draws live on their own stream so that enabling them
                // leaves every request draw below bit-for-bit untouched.
                let update_stream = derive_seed(stream, u64::MAX);
                for r in 0..spec.requests_per_client {
                    if spec.update_every > 0
                        && !spec.updates.is_empty()
                        && r % spec.update_every == 0
                    {
                        let udraw = derive_seed(update_stream, r as u64);
                        let u = &spec.updates[(udraw as usize) % spec.updates.len()];
                        match broker.update(&u.tenant, &u.graph, &u.batch) {
                            Ok(_) => t.updates += 1,
                            Err(_) => t.failed += 1,
                        }
                    }
                    let draw = derive_seed(stream, r as u64);
                    let mut req = Request {
                        tenant: spec.tenants[(draw as usize) % spec.tenants.len()].clone(),
                        graph: spec.graphs[((draw >> 16) as usize) % spec.graphs.len()].clone(),
                        seed: None,
                        query: spec.queries[((draw >> 32) as usize) % spec.queries.len()].clone(),
                        deadline_ms: spec.deadline_ms,
                        fingerprint: None,
                    };
                    let start = Instant::now();
                    let mut attempt = 0u32;
                    loop {
                        match broker.serve(&req) {
                            Ok(resp) => {
                                t.served += 1;
                                t.rounds += resp.report.rounds;
                                if matches!(resp.report.guarantee, Guarantee::Degraded { .. }) {
                                    t.degraded += 1;
                                }
                                local_lat.push(start.elapsed().as_nanos() as u64);
                            }
                            Err(ServeError::Overloaded { .. }) if attempt < spec.retries => {
                                attempt += 1;
                                t.retries += 1;
                                let backoff = spec.retry_backoff_ms << (attempt - 1).min(4) as u64;
                                if backoff > 0 {
                                    std::thread::sleep(Duration::from_millis(backoff));
                                }
                                // A retried request must not re-wait a spent
                                // deadline budget; the retry goes back in
                                // with whatever budget the spec gave it.
                                req.deadline_ms = spec.deadline_ms;
                                continue;
                            }
                            Err(ServeError::Overloaded { .. }) => t.shed += 1,
                            Err(ServeError::DeadlineExceeded { .. }) => t.deadline_shed += 1,
                            Err(ServeError::BreakerOpen { .. }) => t.breaker_rejected += 1,
                            Err(_) => t.failed += 1,
                        }
                        break;
                    }
                }
                latencies.lock().expect("latency sample lock").extend(local_lat);
                let mut o = outcomes.lock().expect("outcome counter lock");
                o.served += t.served;
                o.shed += t.shed;
                o.deadline_shed += t.deadline_shed;
                o.breaker_rejected += t.breaker_rejected;
                o.degraded += t.degraded;
                o.retries += t.retries;
                o.failed += t.failed;
                o.updates += t.updates;
                o.rounds += t.rounds;
            });
        }
    });
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let mut sample = latencies.into_inner().expect("latency sample");
    sample.sort_unstable();
    let t = outcomes.into_inner().expect("outcome counters");
    let issued = (spec.clients * spec.requests_per_client) as u64;
    LoadReport {
        name: spec.name.clone(),
        clients: spec.clients,
        issued,
        served: t.served,
        shed: t.shed,
        deadline_shed: t.deadline_shed,
        breaker_rejected: t.breaker_rejected,
        degraded_served: t.degraded,
        retries: t.retries,
        failed: t.failed,
        updates_applied: t.updates,
        wall_ns,
        p50_ns: percentile(&sample, 0.50),
        p95_ns: percentile(&sample, 0.95),
        p99_ns: percentile(&sample, 0.99),
        qps: if wall_ns == 0 { 0.0 } else { t.served as f64 * 1e9 / wall_ns as f64 },
        shed_rate: if issued == 0 { 0.0 } else { t.shed as f64 / issued as f64 },
        rounds_total: t.rounds,
        stats: broker.stats(),
    }
}
