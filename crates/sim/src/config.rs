//! Simulator configuration: the `(λ, γ)` hybrid-network parametrization and the
//! congestion-overflow policy.

use hybrid_graph::graph::log2_ceil;

/// What to do when a global exchange exceeds the per-round caps.
///
/// The paper's protocols guarantee w.h.p. that no node receives more than
/// `O(log n)` messages per round (Lemma D.2); the policy decides how the simulator
/// reacts if that budget is ever exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Return an error — used by tests to *prove* the w.h.p. bounds hold.
    Fail,
    /// Deliver everything but charge the honest number of rounds the batch needs,
    /// i.e. `max_v ⌈sent_v / send_cap⌉` and `max_v ⌈recv_v / recv_cap⌉`. This
    /// models a capacitated network that simply takes longer, and is the default
    /// for benchmarks.
    #[default]
    Stretch,
}

/// Configuration of a [`crate::HybridNet`].
///
/// In the paper's parametrization (footnote 2): `λ` (local bits per edge per
/// round) is always `∞` here — LOCAL mode; `γ` (global bits per node per round)
/// equals `send_cap · O(log n)` bits, i.e. `send_cap_factor = 1` gives the
/// standard NCC budget `γ = Θ(log² n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Per-node global *send* budget per round, in multiples of `⌈log2 n⌉`
    /// messages. The NCC default is 1.0.
    pub send_cap_factor: f64,
    /// Per-node global *receive* budget per round, in multiples of `⌈log2 n⌉`
    /// messages. The paper's `ρ ∈ Θ(log n)` (Lemma D.2) allows a larger constant
    /// than the send side; default 4.0.
    pub recv_cap_factor: f64,
    /// Overflow policy.
    pub overflow: OverflowPolicy,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            send_cap_factor: 1.0,
            recv_cap_factor: 4.0,
            overflow: OverflowPolicy::Stretch,
        }
    }
}

impl HybridConfig {
    /// Config with the [`OverflowPolicy::Fail`] policy (for tests that assert the
    /// w.h.p. congestion bounds).
    pub fn strict() -> Self {
        HybridConfig { overflow: OverflowPolicy::Fail, ..Self::default() }
    }

    /// Per-node send cap in messages per round for a graph on `n` nodes
    /// (`⌈factor · ⌈log2 n⌉⌉`, at least 1).
    pub fn send_cap(&self, n: usize) -> usize {
        cap(self.send_cap_factor, n)
    }

    /// Per-node receive cap in messages per round for a graph on `n` nodes.
    pub fn recv_cap(&self, n: usize) -> usize {
        cap(self.recv_cap_factor, n)
    }
}

fn cap(factor: f64, n: usize) -> usize {
    ((factor * log2_ceil(n) as f64).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_caps_scale_logarithmically() {
        let c = HybridConfig::default();
        assert_eq!(c.send_cap(2), 1);
        assert_eq!(c.send_cap(1024), 10);
        assert_eq!(c.recv_cap(1024), 40);
        assert!(c.send_cap(1_000_000) >= 20);
    }

    #[test]
    fn caps_never_zero() {
        let c = HybridConfig {
            send_cap_factor: 0.01,
            recv_cap_factor: 0.01,
            overflow: OverflowPolicy::Fail,
        };
        assert_eq!(c.send_cap(4), 1);
        assert_eq!(c.recv_cap(4), 1);
    }

    #[test]
    fn strict_uses_fail() {
        assert_eq!(HybridConfig::strict().overflow, OverflowPolicy::Fail);
        assert_eq!(HybridConfig::default().overflow, OverflowPolicy::Stretch);
    }
}
