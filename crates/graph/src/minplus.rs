//! Blocked min-plus (tropical) matrix kernel.
//!
//! Three hand-rolled triple loops used to live in the protocol layers — the
//! skeleton-label merge of the HYBRID APSP algorithms, the per-triple block
//! product of the CLIQUE semiring squaring, and the eccentricity assembly of
//! the diameter plugins. They are all instances of one operation:
//!
//! ```text
//! out[i][j] ← min(out[i][j], min_k a[i][k] + b[k][j])
//! ```
//!
//! over the `(min, +)` semiring with [`INFINITY`] absorbing. This module is
//! that operation, implemented once: a cache-tiled, branch-free inner loop
//! ([`min_plus_into`]) and a thread-parallel row driver
//! ([`par_min_plus_into`], worker count = `available_parallelism`, overridable
//! with `HYBRID_MINPLUS_THREADS`). Results are exact minima, so they are
//! bit-identical regardless of tiling or thread count.

use crate::dist::{Distance, INFINITY};

/// Rows of the `k` (inner) dimension processed per tile: keeps the active
/// slice of `b` resident in cache while each output row is revisited.
const K_TILE: usize = 64;

/// Accumulates the min-plus product `a ⊗ b` into `out`:
/// `out[i][j] ← min(out[i][j], min_k a[i][k] + b[k][j])`.
///
/// `a` is `rows × inner`, `b` is `inner × cols`, `out` is `rows × cols`, all
/// row-major. `out` is *accumulated into*, not overwritten — seed it with
/// [`INFINITY`] for a plain product, or with existing distances to fuse the
/// product with a running minimum (the skeleton-merge pattern). Additions
/// saturate at [`INFINITY`] exactly like [`crate::dist_add`].
///
/// # Panics
///
/// Panics if a slice length does not match its dimensions.
pub fn min_plus_into(
    a: &[Distance],
    b: &[Distance],
    out: &mut [Distance],
    rows: usize,
    cols: usize,
) {
    let inner = a.len().checked_div(rows).unwrap_or(0);
    assert_eq!(a.len(), rows * inner, "a must be rows × inner");
    assert_eq!(b.len(), inner * cols, "b must be inner × cols");
    assert_eq!(out.len(), rows * cols, "out must be rows × cols");
    let mut k0 = 0;
    while k0 < inner {
        let k1 = (k0 + K_TILE).min(inner);
        for (arow, orow) in a.chunks_exact(inner).zip(out.chunks_exact_mut(cols)) {
            for (k, &aik) in arow.iter().enumerate().take(k1).skip(k0) {
                if aik == INFINITY {
                    continue;
                }
                let brow = &b[k * cols..(k + 1) * cols];
                // Branch-free accumulation: `saturating_add` equals
                // `dist_add` for a finite left operand, and `min` needs no
                // INFINITY special case.
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    *o = (*o).min(aik.saturating_add(bkj));
                }
            }
        }
        k0 = k1;
    }
}

/// Worker count for the parallel drivers: the smaller of the available cores
/// (or the `HYBRID_MINPLUS_THREADS` override) and the row count.
fn worker_count(rows: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let configured = std::env::var("HYBRID_MINPLUS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t > 0);
    configured.unwrap_or(hw).min(rows).max(1)
}

/// Output rows below which [`par_min_plus_into`] stays sequential (thread
/// spawn costs more than the product).
const PAR_MIN_ROWS: usize = 16;

/// [`min_plus_into`] with the output rows partitioned across OS threads
/// (`std::thread::scope`): thread `t` computes a contiguous band of `out`
/// from the matching band of `a` and all of `b`. Exact minima make the result
/// bit-identical to the sequential kernel.
pub fn par_min_plus_into(
    a: &[Distance],
    b: &[Distance],
    out: &mut [Distance],
    rows: usize,
    cols: usize,
) {
    let threads = worker_count(rows);
    if threads <= 1 || rows < PAR_MIN_ROWS {
        min_plus_into(a, b, out, rows, cols);
        return;
    }
    let inner = a.len() / rows;
    let chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (arows, orows) in a.chunks(chunk * inner).zip(out.chunks_mut(chunk * cols)) {
            scope.spawn(move || {
                min_plus_into(arows, b, orows, orows.len() / cols, cols);
            });
        }
    });
}

/// Maps every row of the row-major `rows × cols` matrix `m` through `f`
/// (receiving `(row index, row slice)`), in parallel bands of rows — the
/// driver behind eccentricity assembly from a distance matrix. Results come
/// back in row order.
pub fn par_row_map<T, F>(m: &[Distance], rows: usize, cols: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[Distance]) -> T + Sync,
{
    assert_eq!(m.len(), rows * cols, "matrix must be rows × cols");
    if cols == 0 {
        return (0..rows).map(|i| f(i, &[])).collect();
    }
    let threads = worker_count(rows);
    if threads <= 1 || rows < PAR_MIN_ROWS {
        return m.chunks_exact(cols).enumerate().map(|(i, row)| f(i, row)).collect();
    }
    let chunk = rows.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = m
            .chunks(chunk * cols)
            .enumerate()
            .map(|(ci, band)| {
                scope.spawn(move || {
                    band.chunks_exact(cols)
                        .enumerate()
                        .map(|(j, row)| f(ci * chunk + j, row))
                        .collect::<Vec<T>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("min-plus worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::dist_add;

    /// Reference triple loop in the exact shape the protocol layers used.
    fn naive(a: &[Distance], b: &[Distance], out: &mut [Distance], rows: usize, cols: usize) {
        let inner = a.len().checked_div(rows).unwrap_or(0);
        for i in 0..rows {
            for j in 0..cols {
                let mut best = out[i * cols + j];
                for k in 0..inner {
                    best = best.min(dist_add(a[i * inner + k], b[k * cols + j]));
                }
                out[i * cols + j] = best;
            }
        }
    }

    fn scramble(rows: usize, cols: usize, salt: u64) -> Vec<Distance> {
        (0..rows * cols)
            .map(|i| {
                let v = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt);
                if v.is_multiple_of(5) {
                    INFINITY
                } else {
                    v % 1000
                }
            })
            .collect()
    }

    #[test]
    fn kernel_matches_naive_triple_loop() {
        for (rows, inner, cols, salt) in
            [(1, 1, 1, 0), (3, 7, 5, 1), (20, 70, 33, 2), (65, 65, 65, 3), (128, 130, 4, 4)]
        {
            let a = scramble(rows, inner, salt);
            let b = scramble(inner, cols, salt + 100);
            let mut expected = scramble(rows, cols, salt + 200);
            let mut got = expected.clone();
            naive(&a, &b, &mut expected, rows, cols);
            min_plus_into(&a, &b, &mut got, rows, cols);
            assert_eq!(got, expected, "dims ({rows}, {inner}, {cols})");
        }
    }

    #[test]
    fn kernel_accumulates_into_seeded_output() {
        // Fused-merge pattern: out already holds distances; the product may
        // only improve entries.
        let a = vec![1, INFINITY, 2, 3];
        let b = vec![10, 20, 30, 40];
        let mut out = vec![5, 100, 100, 31];
        min_plus_into(&a, &b, &mut out, 2, 2);
        // Row 0: min(5, 1+10, ∞) / min(100, 1+20, ∞);
        // row 1: min(100, 2+10, 3+30) / min(31, 2+20, 3+40).
        assert_eq!(out, vec![5, 21, 12, 22]);
    }

    #[test]
    fn saturating_add_matches_dist_add() {
        let a = vec![u64::MAX - 1, 5];
        let b = vec![7, INFINITY];
        let mut out = vec![INFINITY; 1];
        min_plus_into(&a, &b, &mut out, 1, 1);
        // (MAX-1) + 7 saturates to INFINITY; 5 + INFINITY absorbs.
        assert_eq!(out, vec![INFINITY]);
    }

    #[test]
    fn parallel_driver_is_bit_identical() {
        let (rows, inner, cols) = (97, 41, 53);
        let a = scramble(rows, inner, 7);
        let b = scramble(inner, cols, 8);
        let seed = scramble(rows, cols, 9);
        let mut seq = seed.clone();
        min_plus_into(&a, &b, &mut seq, rows, cols);
        let mut par = seed;
        par_min_plus_into(&a, &b, &mut par, rows, cols);
        assert_eq!(par, seq);
    }

    #[test]
    fn row_map_preserves_order() {
        let m = scramble(40, 6, 11);
        let eccs = par_row_map(&m, 40, 6, |i, row| (i, row.iter().copied().max().unwrap()));
        for (i, &(idx, ecc)) in eccs.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(ecc, m[i * 6..(i + 1) * 6].iter().copied().max().unwrap());
        }
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut out: Vec<Distance> = Vec::new();
        min_plus_into(&[], &[], &mut out, 0, 0);
        par_min_plus_into(&[], &[], &mut out, 0, 0);
        assert!(par_row_map(&[], 0, 0, |_, _| 0u8).is_empty());
    }
}
