//! The k-source shortest-paths framework (§4, Theorem 4.1, Algorithm 5) and its
//! instantiations (Corollaries 4.6–4.8 = Theorem 1.2).
//!
//! Given a CLIQUE algorithm `A` — an `(α, β)`-approximation for `n^γ` sources in
//! `T_A = Õ(η n^δ)` rounds — the framework produces a HYBRID algorithm with
//! runtime `Õ(η n^{1-x})` for `x = 2/(3+2δ)`:
//!
//! 1. Build a skeleton with `|V_S| ≈ n^x` (Algorithm 6), forcing the source in
//!    for the single-source case (Lemma 4.5).
//! 2. Replace each source by its closest skeleton node (*representative*,
//!    Algorithm 7) and publish the `⟨d_h(s, r_s), s, r_s⟩` pairs (`Õ(√k)`).
//! 3. Simulate `A` on the skeleton (Corollary 4.1 / Algorithm 8).
//! 4. Flood the skeleton estimates `ηh` hops; every node combines them with its
//!    local exact distances via Equation (1):
//!    `d̃(v,s) = min(d_{ηh}(v,s), min_u d_h(v,u) + d̃(u,r_s) + d_h(r_s,s))`.
//!
//! Approximation guarantees (Theorem 4.1): `(2α + 1 + β/T_B)` weighted,
//! `(α + 2/η + β/T_B)` unweighted, `(α + β/T_B)` single-source.

use clique_sim::declared::DeclaredKssp;
use clique_sim::{CliqueKsspAlgorithm, SourceCapacity};
use hybrid_graph::dijkstra::par_map_rows;
use hybrid_graph::{dist_add, Distance, NodeId, INFINITY};
use hybrid_sim::{derive_seed, HybridNet};

use crate::clique_on_skeleton::{simulate_kssp_on_skeleton, CliqueSimReport};
use crate::error::HybridError;
use crate::prepare::{near_phase, skeleton_phase, NearTie, Prep};
use crate::skeleton_ops::{compute_representatives, Representative};

/// Configuration of the framework run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsspConfig {
    /// Skeleton radius constant `ξ` (see [`crate::apsp::ApspConfig::xi`]).
    pub xi: f64,
}

impl Default for KsspConfig {
    fn default() -> Self {
        KsspConfig { xi: 1.5 }
    }
}

/// Result of a k-SSP framework run.
#[derive(Debug, Clone)]
pub struct KsspOutcome {
    /// The sources, in input order.
    pub sources: Vec<NodeId>,
    /// `est[s_idx][v]`: the distance estimate `d̃(v, s)`.
    pub est: Vec<Vec<Distance>>,
    /// Total HYBRID rounds `T_B`.
    pub rounds: u64,
    /// Skeleton size `|V_S|`.
    pub skeleton_size: usize,
    /// Skeleton hop budget `h`.
    pub h: usize,
    /// The framework exponent `x = 2/(3+2δ)`.
    pub x: f64,
    /// CLIQUE simulation cost breakdown.
    pub clique: CliqueSimReport,
    /// Lemma C.1 fallback count (see [`crate::apsp::ApspOutcome`]).
    pub coverage_fallbacks: usize,
    /// The local exploration radius `⌈ηh⌉` actually used (the paper explores
    /// for the full runtime `T_B`; we charge and use exactly this radius, so
    /// the guarantee's additive-to-multiplicative conversion divides by it).
    pub explore: u64,
    /// Parameters of the plugged CLIQUE algorithm, for guarantee computation:
    /// `(α, β bound on the skeleton, η)`.
    pub alpha: f64,
    /// Additive bound `β` evaluated on the skeleton's max edge weight.
    pub beta_bound: f64,
    /// Runtime multiplier `η` of the CLIQUE algorithm.
    pub eta: f64,
    /// Whether the single-source specialization (Lemma 4.5) was used.
    pub single_source: bool,
}

impl KsspOutcome {
    /// The estimate `d̃(v, s)` for the `s_idx`-th source.
    pub fn get(&self, s_idx: usize, v: NodeId) -> Distance {
        self.est[s_idx][v.index()]
    }

    /// The approximation factor Theorem 4.1 guarantees for this run
    /// (`unweighted` per the paper's case split). The additive term is
    /// converted at the actual exploration radius: `β / ⌈ηh⌉`.
    pub fn guaranteed_factor(&self, unweighted: bool) -> f64 {
        let beta_term = if self.explore > 0 { self.beta_bound / self.explore as f64 } else { 0.0 };
        if self.single_source {
            self.alpha + beta_term
        } else if unweighted {
            self.alpha + 2.0 / self.eta + beta_term
        } else {
            2.0 * self.alpha + 1.0 + beta_term
        }
    }

    /// Measured worst-case ratio `d̃ / d` against exact distances
    /// (`exact[s_idx][v]`), ignoring unreachable pairs.
    pub fn max_ratio_vs(&self, exact: &[Vec<Distance>]) -> f64 {
        let mut worst: f64 = 1.0;
        for (row, erow) in self.est.iter().zip(exact) {
            for (&a, &e) in row.iter().zip(erow) {
                if e == 0 || e == INFINITY || a == INFINITY {
                    continue;
                }
                worst = worst.max(a as f64 / e as f64);
            }
        }
        worst
    }
}

/// Runs the framework (Algorithm 5) with CLIQUE plugin `alg`.
///
/// # Errors
///
/// * [`clique_sim::CliqueError::TooManySources`] (wrapped) if `sources` exceeds
///   the plugin's `n^{xγ}` capacity on the skeleton.
/// * Simulator/routing errors.
///
/// # Panics
///
/// Panics if `sources` is empty.
pub fn kssp_framework<A: CliqueKsspAlgorithm + ?Sized>(
    net: &mut HybridNet<'_>,
    alg: &A,
    sources: &[NodeId],
    cfg: KsspConfig,
    seed: u64,
) -> Result<KsspOutcome, HybridError> {
    kssp_framework_prepared(net, alg, sources, cfg, seed, Prep::Cold)
}

pub(crate) fn kssp_framework_prepared<A: CliqueKsspAlgorithm + ?Sized>(
    net: &mut HybridNet<'_>,
    alg: &A,
    sources: &[NodeId],
    cfg: KsspConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<KsspOutcome, HybridError> {
    assert!(!sources.is_empty(), "at least one source required");
    if matches!(alg.capacity(), SourceCapacity::SingleSource) && sources.len() > 1 {
        return Err(HybridError::Clique(clique_sim::CliqueError::TooManySources {
            got: sources.len(),
            max: 1,
        }));
    }
    let start = net.rounds();
    let n = net.n();
    let delta = alg.delta();
    let x = 2.0 / (3.0 + 2.0 * delta);
    let single_source = sources.len() == 1;

    // Step 1: skeleton (force the source in for the single-source case).
    let forced: &[NodeId] = if single_source { &sources[..1] } else { &[] };
    let art = skeleton_phase(net, x, cfg.xi, forced, seed, "kssp:skeleton", prep)?;
    let skeleton = &art.skeleton;
    let h = skeleton.h();
    let ns = skeleton.len();

    // Step 2: representatives (free for a single in-skeleton source).
    let reps: Vec<Representative> = if single_source {
        let local = skeleton.local_index(sources[0]).expect("forced source is in the skeleton");
        vec![Representative { source: sources[0], rep_local: local, dist: 0 }]
    } else {
        let (reps, _fallbacks) =
            compute_representatives(net, skeleton, sources, derive_seed(seed, 1), "kssp:reps")?;
        reps
    };

    // Step 3: simulate A on the skeleton with the (dedup'd) representatives as
    // clique sources.
    let mut rep_locals: Vec<usize> = reps.iter().map(|r| r.rep_local).collect();
    rep_locals.sort_unstable();
    rep_locals.dedup();
    let clique_sources: Vec<NodeId> = rep_locals.iter().map(|&i| NodeId::new(i)).collect();
    let (est_s, clique_report) = simulate_kssp_on_skeleton(
        net,
        skeleton,
        alg,
        &clique_sources,
        derive_seed(seed, 2),
        "kssp:clique",
    )?;
    let rep_row: std::collections::HashMap<usize, usize> =
        rep_locals.iter().enumerate().map(|(row, &local)| (local, row)).collect();

    // Step 4: flood estimates ηh hops and assemble Equation (1).
    let eta = alg.eta().max(1.0);
    let explore = ((eta * h as f64).ceil() as u64).max(h as u64);
    net.charge_local(explore, "kssp:local-exploration");

    let g = net.graph();
    // Per-node nearby-skeleton lists — this framework's fallback keeps its
    // own `(distance, index)` tie-break, so it is cached as its own flavor.
    let near = near_phase(net, &art, NearTie::IndexOnly, "kssp:near");

    // Equation (1) per source — one parallel lexicographic Dijkstra per
    // representative (pooled workspaces across worker threads) instead of a
    // fresh allocating run per source. `compute_representatives` yields
    // exactly one representative per source, so the assembled rows are the
    // estimate table.
    debug_assert_eq!(reps.len(), sources.len(), "one representative per source");
    let rep_sources: Vec<NodeId> = reps.iter().map(|r| r.source).collect();
    let est = par_map_rows(g, &rep_sources, |s_idx, _, dist, hops| {
        let rep = &reps[s_idx];
        let row = rep_row[&rep.rep_local];
        let mut out = vec![INFINITY; n];
        for v in 0..n {
            // Local exact part: d_{ηh}(v, s) for nodes whose lex-shortest
            // path from s fits in the exploration radius.
            let mut best = if hops[v] <= explore { dist[v] } else { INFINITY };
            // Skeleton part: min over nearby skeletons u of
            // d_h(v,u) + d̃(u, r_s) + d_h(r_s, s).
            for (u, dvu) in near.node(v) {
                let via = dist_add(dist_add(dvu, est_s.get(row, NodeId::new(u))), rep.dist);
                best = best.min(via);
            }
            out[v] = best;
        }
        out
    });

    Ok(KsspOutcome {
        sources: sources.to_vec(),
        est,
        rounds: net.rounds() - start,
        skeleton_size: ns,
        h,
        x,
        explore,
        clique: clique_report,
        coverage_fallbacks: near.fallbacks,
        alpha: alg.alpha(),
        beta_bound: alg.beta().bound(skeleton.graph().max_weight()),
        eta,
        single_source,
    })
}

/// Corollary 4.6: `n^{1/3}`-source shortest paths, `(1+ε)` unweighted / `(3+ε)`
/// weighted, `Õ(n^{1/3}/ε)` rounds. Plugin: \[7\] Theorem 1.2 with `γ = 1/2`.
pub fn kssp_cor46(
    net: &mut HybridNet<'_>,
    sources: &[NodeId],
    eps: f64,
    cfg: KsspConfig,
    seed: u64,
) -> Result<KsspOutcome, HybridError> {
    kssp_cor46_prepared(net, sources, eps, cfg, seed, Prep::Cold)
}

pub(crate) fn kssp_cor46_prepared(
    net: &mut HybridNet<'_>,
    sources: &[NodeId],
    eps: f64,
    cfg: KsspConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<KsspOutcome, HybridError> {
    let alg = DeclaredKssp::censor_hillel_sqrt_sources(eps, derive_seed(seed, 46));
    kssp_framework_prepared(net, &alg, sources, cfg, seed, prep)
}

/// Corollary 4.7: any `k` sources, `(2+ε)` unweighted / `(7+ε)` weighted,
/// `Õ(n^{1/3}/ε + √k)` rounds. Plugin: \[7\] Theorem 1.1 (APSP).
pub fn kssp_cor47(
    net: &mut HybridNet<'_>,
    sources: &[NodeId],
    eps: f64,
    cfg: KsspConfig,
    seed: u64,
) -> Result<KsspOutcome, HybridError> {
    kssp_cor47_prepared(net, sources, eps, cfg, seed, Prep::Cold)
}

pub(crate) fn kssp_cor47_prepared(
    net: &mut HybridNet<'_>,
    sources: &[NodeId],
    eps: f64,
    cfg: KsspConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<KsspOutcome, HybridError> {
    let alg = DeclaredKssp::censor_hillel_apsp(eps, derive_seed(seed, 47));
    kssp_framework_prepared(net, &alg, sources, cfg, seed, prep)
}

/// Corollary 4.8: any `k` sources, `(1+ε)` unweighted / `(3+o(1))` weighted,
/// `Õ(n^{0.397} + √k)` rounds. Plugin: the algebraic APSP of \[8\].
pub fn kssp_cor48(
    net: &mut HybridNet<'_>,
    sources: &[NodeId],
    eps: f64,
    cfg: KsspConfig,
    seed: u64,
) -> Result<KsspOutcome, HybridError> {
    kssp_cor48_prepared(net, sources, eps, cfg, seed, Prep::Cold)
}

pub(crate) fn kssp_cor48_prepared(
    net: &mut HybridNet<'_>,
    sources: &[NodeId],
    eps: f64,
    cfg: KsspConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<KsspOutcome, HybridError> {
    let alg = DeclaredKssp::algebraic_apsp(eps, derive_seed(seed, 48));
    kssp_framework_prepared(net, &alg, sources, cfg, seed, prep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_sim::bellman_ford::BellmanFordKSsp;
    use hybrid_graph::apsp::apsp;
    use hybrid_graph::generators::{erdos_renyi_connected, grid};
    use hybrid_graph::Graph;
    use hybrid_sim::HybridConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_rows(g: &Graph, sources: &[NodeId]) -> Vec<Vec<Distance>> {
        let m = apsp(g);
        sources.iter().map(|&s| m.row(s).to_vec()).collect()
    }

    fn random_sources(n: usize, k: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s: Vec<NodeId> = (0..k).map(|_| NodeId::new(rng.gen_range(0..n))).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    #[test]
    fn estimates_never_underestimate_and_meet_guarantee() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_connected(100, 0.06, 4, &mut rng).unwrap();
        let sources = random_sources(100, 6, 2);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = kssp_cor47(&mut net, &sources, 0.5, KsspConfig::default(), 3).unwrap();
        let exact = exact_rows(&g, &sources);
        for (s_idx, row) in exact.iter().enumerate() {
            for v in 0..100 {
                assert!(out.est[s_idx][v] >= row[v], "underestimate at ({s_idx}, {v})");
            }
        }
        let ratio = out.max_ratio_vs(&exact);
        let bound = out.guaranteed_factor(false);
        assert!(ratio <= bound + 1e-9, "ratio {ratio} > guarantee {bound}");
    }

    #[test]
    fn unweighted_cor46_is_tight() {
        let g = grid(10, 10, 1).unwrap();
        // n^{xγ} = 100^{1/3} ≈ 4.6, capacity tolerance ×4 ⇒ a handful of sources.
        let sources = random_sources(100, 4, 5);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = kssp_cor46(&mut net, &sources, 0.5, KsspConfig::default(), 7).unwrap();
        let exact = exact_rows(&g, &sources);
        let ratio = out.max_ratio_vs(&exact);
        assert!(ratio <= out.guaranteed_factor(true) + 1e-9, "ratio {ratio}");
    }

    #[test]
    fn genuine_clique_plugin_gives_exact_kssp() {
        // Bellman–Ford is exact (α = 1, β = 0) and the framework's only loss is
        // the representative detour — so estimates equal the guarantee math with
        // α = 1. With single source forced into the skeleton it must be exact.
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi_connected(70, 0.08, 3, &mut rng).unwrap();
        let source = NodeId::new(12);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out =
            kssp_framework(&mut net, &BellmanFordKSsp::new(), &[source], KsspConfig::default(), 9)
                .unwrap();
        let exact = exact_rows(&g, &[source]);
        assert_eq!(out.est[0], exact[0], "single-source with exact plugin must be exact");
        assert!(out.single_source);
    }

    #[test]
    fn too_many_sources_rejected() {
        // A single-source plugin must reject multi-source instances outright
        // rather than silently dropping sources.
        let g = grid(8, 8, 1).unwrap();
        let alg = clique_sim::declared::DeclaredKssp::exact_sssp();
        let sources: Vec<NodeId> = vec![NodeId::new(0), NodeId::new(9)];
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let err = kssp_framework(&mut net, &alg, &sources, KsspConfig::default(), 1).unwrap_err();
        assert!(
            matches!(
                err,
                HybridError::Clique(clique_sim::CliqueError::TooManySources { got: 2, max: 1 })
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn cor48_runs_and_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi_connected(90, 0.07, 1, &mut rng).unwrap();
        let sources = random_sources(90, 8, 3);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = kssp_cor48(&mut net, &sources, 0.25, KsspConfig::default(), 2).unwrap();
        let exact = exact_rows(&g, &sources);
        assert!(out.max_ratio_vs(&exact) <= out.guaranteed_factor(true) + 1e-9);
        assert!((out.x - 2.0 / (3.0 + 2.0 * 0.15715)).abs() < 1e-12);
    }
}
