//! Minimal fixed-width table printing for the experiment binary.

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str(" | ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 3 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.row(vec!["10".into(), "123".into()]);
        t.row(vec!["1000".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("1000 |      4"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_bad_arity() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
