//! Property tests for the scenario-engine graph families: connectivity where
//! promised, degree bounds, and seed-determinism.

use hybrid_graph::generators::{
    barabasi_albert, erdos_renyi_connected, random_geometric_connected, watts_strogatz,
};
use hybrid_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn edge_list(g: &Graph) -> Vec<(usize, usize, u64)> {
    g.edges().iter().map(|e| (e.u.index(), e.v.index(), e.w)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Barabási–Albert: connected by construction, min degree ≥ attach, exact
    /// edge count, deterministic for a fixed seed.
    #[test]
    fn barabasi_albert_invariants(
        n in 10usize..120,
        attach in 1usize..5,
        max_w in 1u64..8,
        seed in 0u64..1000,
    ) {
        let attach = attach.min(n - 1);
        let g = barabasi_albert(n, attach, max_w, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.num_edges(), attach + attach * (n - attach - 1));
        // Seed-star leaves may keep degree 1; every *attached* node (index >
        // attach) contributes `attach` incident edges of its own.
        for v in g.nodes().skip(attach + 1) {
            prop_assert!(g.degree(v) >= attach);
        }
        prop_assert!(g.max_weight() <= max_w);
        let again = barabasi_albert(n, attach, max_w, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edge_list(&g), edge_list(&again));
    }

    /// Watts–Strogatz: connected (patched), edge count within the rewiring
    /// collision tolerance, weights bounded, deterministic for a fixed seed.
    #[test]
    fn watts_strogatz_invariants(
        n in 12usize..120,
        half_k in 1usize..3,
        beta in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let k = 2 * half_k;
        let g = watts_strogatz(n, k, beta, 4, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert!(g.is_connected());
        let lattice_edges = n * k / 2;
        // Rewiring only ever loses an edge to a collision; the connectivity
        // patch adds back at most one edge per lost component.
        prop_assert!(g.num_edges() <= lattice_edges + n / 2);
        prop_assert!(g.num_edges() + n / 10 + 1 >= lattice_edges);
        prop_assert!(g.max_weight() <= 4);
        let again = watts_strogatz(n, k, beta, 4, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edge_list(&g), edge_list(&again));
    }

    /// The patched random families always come out connected and reproducible.
    #[test]
    fn patched_random_families_connected_and_deterministic(
        n in 8usize..80,
        seed in 0u64..500,
    ) {
        let er = erdos_renyi_connected(n, 1.5 / n as f64, 5, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert!(er.is_connected());
        let er2 = erdos_renyi_connected(n, 1.5 / n as f64, 5, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edge_list(&er), edge_list(&er2));

        let geo = random_geometric_connected(n, 0.2, 5, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert!(geo.is_connected());
        let geo2 = random_geometric_connected(n, 0.2, 5, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(edge_list(&geo), edge_list(&geo2));
    }
}
