//! Umbrella crate for the reproduction of Kuhn & Schneider,
//! *Computing Shortest Paths and Diameter in the Hybrid Network Model* (PODC 2020).
//!
//! This crate re-exports the workspace members so that examples and integration
//! tests can address the whole system through one dependency:
//!
//! * [`graph`] — graph substrate (types, generators, reference algorithms,
//!   skeletons, lower-bound constructions).
//! * [`sim`] — the HYBRID communication-model simulator (round clock, NCC global
//!   channel with congestion enforcement, LOCAL phase accounting).
//! * [`clique`] — the congested-clique substrate (Lenzen-routing cost model and
//!   CLIQUE algorithms used as plugins by the paper's framework).
//! * [`core`] — the paper's algorithms: token routing, APSP, k-SSP, SSSP,
//!   diameter, and the lower-bound experiment harnesses.
//! * [`scenarios`] — the scenario engine: declarative workload registry,
//!   fault injection, parallel runner, and golden verification.
//! * [`serve`] — the serving front-end: a multi-tenant request [`Broker`]
//!   over [`Session`] with byte-budgeted caching, admission control, a
//!   line-delimited wire protocol (in-process and TCP), and a closed-loop
//!   load generator.
//!
//! The front door to all of the paper's algorithms is the [`solver`] facade:
//! describe *what* to compute as a typed, validated [`Query`], run it with
//! [`solve`], and read the answer plus its paper-level contract off the
//! uniform [`Report`]. For serving many queries on one graph, open a
//! [`Session`] instead — it runs the shared preprocessing (skeleton
//! sampling, skeleton distances, nearby-skeleton knowledge) once and answers
//! every query bit-identically to a fresh `solve`, several times faster on
//! mixed batches.
//!
//! # Example
//!
//! ```
//! use hybrid_shortest_paths::graph::generators::grid;
//! use hybrid_shortest_paths::graph::NodeId;
//! use hybrid_shortest_paths::{Guarantee, Query, Session, SessionConfig};
//!
//! // A 6×6 grid fabric, served under the HYBRID model from one session
//! // (seed 7, ξ = 1.5): the shared preprocessing is computed once.
//! let g = grid(6, 6, 1).unwrap();
//! let session = Session::new(&g, SessionConfig::new(7)).unwrap();
//!
//! // Exact APSP (Theorem 1.1), validated at construction.
//! let query = Query::apsp().xi(1.5).build().unwrap();
//! let report = session.solve(&query).unwrap();
//!
//! assert_eq!(report.label(), "apsp-thm11");
//! assert_eq!(report.guarantee, Guarantee::Exact);
//! let dist = report.distances().expect("APSP answers with a matrix");
//! assert_eq!(dist.get(NodeId::new(0), NodeId::new(35)), 10, "corner to corner");
//! assert!(report.rounds > 0 && report.global_messages > 0);
//!
//! // Later queries on the same graph reuse the prepared artifacts; repeats
//! // are served from the report memo — answers stay bit-identical to a
//! // fresh `solve(&mut net, &query, 7)`.
//! let again = session.solve(&query).unwrap();
//! assert_eq!(again.rounds, report.rounds);
//! assert_eq!(session.stats().report_hits, 1);
//! ```

#![warn(missing_docs)]

pub use clique_sim as clique;
pub use hybrid_core as core;
pub use hybrid_core::session;
pub use hybrid_core::session::{Session, SessionConfig, SessionStats};
pub use hybrid_core::solver;
pub use hybrid_core::solver::{
    solve, Answer, ApspVariant, DiameterCorollary, Guarantee, KsspCorollary, Query, QueryError,
    Report, SourceSet, SsspVariant,
};
pub use hybrid_graph as graph;
pub use hybrid_scenarios as scenarios;
pub use hybrid_serve as serve;
pub use hybrid_serve::{Broker, BrokerConfig, BrokerStats, GraphCatalog, ServeError, TenantConfig};
pub use hybrid_sim as sim;
