//! Machine-readable benchmark output (`BENCH_*.json`).
//!
//! The experiment binary's `--json` flag appends wall-clock records here so
//! the repository accumulates a perf trajectory PR over PR. The format is
//! deliberately tiny and hand-written — the build environment has no serde —
//! and stable: one object with a schema tag and a flat record array.
//!
//! Two record shapes share the machinery: plain perf records (the APSP sweep,
//! schema [`SCHEMA`]) and scenario records carrying the registry name, the
//! root seed, and the golden-verification verdict (schema
//! [`SCHEMA_SCENARIOS`]).

use std::fmt::Write as _;
use std::time::Instant;

use hybrid_scenarios::ScenarioReport;

/// One timed benchmark run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchRecord {
    /// Benchmark name (e.g. `"thm11_apsp"`).
    pub bench: String,
    /// Problem size `n`.
    pub n: usize,
    /// Wall-clock nanoseconds of the run.
    pub wall_ns: u128,
    /// Simulated HYBRID rounds of the run (0 for purely sequential
    /// references).
    pub rounds: u64,
    /// Canonical solver query label (`Query::label()`) for records produced
    /// through the solver facade; `None` for sequential reference code.
    pub query: Option<String>,
    /// Round-engine worker budget (`HYBRID_ROUND_THREADS` /
    /// `HybridNet::round_threads`) the run executed under; `None` for
    /// records that never touch the simulator.
    pub threads: Option<usize>,
    /// Registry scenario name, for scenario-engine records.
    pub scenario: Option<String>,
    /// Scenario root seed.
    pub seed: Option<u64>,
    /// Golden-verification verdict (`"pass"` / `"fail"`).
    pub verdict: Option<String>,
    /// Process-lifetime peak resident-set size *as of the end of this run*,
    /// best-effort from `/proc/self/status` (`VmHWM`); `None` where the file
    /// is unavailable. The high-water mark is monotone across a sweep, so
    /// compare successive records (a jump attributes the memory to that
    /// bench) rather than reading any single value as a per-bench footprint.
    pub peak_rss_bytes: Option<u64>,
    /// Graph family label, for throughput records.
    pub family: Option<String>,
    /// Batch size (number of queries), for throughput records.
    pub batch: Option<usize>,
    /// Serving throughput in queries per second, for throughput records.
    pub qps: Option<f64>,
    /// Amortized-vs-cold wall-clock ratio (cold / session), for throughput
    /// records.
    pub amortized_ratio: Option<f64>,
    /// Simulated rounds of the fault-free twin run, for chaos records.
    pub healthy_rounds: Option<u64>,
    /// Wall-clock nanoseconds of the fault-free twin run, for chaos records.
    pub healthy_wall_ns: Option<u128>,
    /// Number of structured trace events the run emitted, for scenario
    /// records (schema v2).
    pub trace_events: Option<u64>,
    /// Name of the phase that consumed the most simulated rounds, for
    /// scenario records (schema v2; omitted when nothing was charged).
    pub top_phase: Option<String>,
    /// Rounds charged under `top_phase` (schema v2).
    pub top_phase_rounds: Option<u64>,
    /// Closed-loop serving-load fields, for broker records (schema
    /// [`SCHEMA_SERVING`]).
    pub serving: Option<ServingFields>,
    /// Damage threshold the repair ran under, for churn records (schema
    /// [`SCHEMA_CHURN`]).
    pub damage_threshold: Option<f64>,
    /// Largest dirtied-node fraction the delta batch produced, for churn
    /// records.
    pub dirty_fraction: Option<f64>,
    /// Graph updates the load generator injected successfully, for churn
    /// serving records.
    pub updates_applied: Option<u64>,
}

/// The serving-load measurement block of one broker workload record
/// ([`SCHEMA_SERVING`]): latency percentiles, saturation throughput, shed
/// rate, and the broker's cache/verification counters. Latencies and qps are
/// wall-clock (nondeterministic); every counter is exact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingFields {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Requests issued (`served + shed + failed` must equal this).
    pub issued: u64,
    /// Requests served successfully (each verified bit-identical to a cold
    /// solve).
    pub served: u64,
    /// Requests shed by admission control (structured overload, no silent
    /// loss).
    pub shed: u64,
    /// Requests failed any other way (must be 0 in a healthy run).
    pub failed: u64,
    /// Median served-request latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Served throughput in queries per second (closed-loop saturation rate
    /// at this client count).
    pub qps: f64,
    /// `shed / issued`.
    pub shed_rate: f64,
    /// Session-cache hits (requests landing on a resident session).
    pub cache_hits: u64,
    /// Sessions created over the run.
    pub cache_admitted: u64,
    /// Sessions evicted by the byte budget.
    pub cache_evicted: u64,
    /// Bytes charged against the session budget at the end of the run.
    pub cache_bytes: u64,
    /// Responses checked against the cold referee.
    pub verified: u64,
    /// Bit-identity violations (must be 0).
    pub mismatches: u64,
    /// Coalesced `solve_batch` calls issued by batch leaders.
    pub batches: u64,
    /// Largest single coalesced batch.
    pub max_batch: u64,
    // --- serving-v2 fields (append-only extension; v1 names unchanged) ---
    /// Client-side retry attempts on overload (schema v2).
    pub retries: u64,
    /// Requests shed because a deadline budget expired waiting for admission
    /// (schema v2; disjoint from `shed`).
    pub deadline_shed: u64,
    /// Requests rejected by an open circuit breaker (schema v2).
    pub breaker_rejected: u64,
    /// Circuit-breaker open transitions (schema v2).
    pub breaker_opens: u64,
    /// Half-open breaker probes (schema v2).
    pub breaker_probes: u64,
    /// Sessions quarantined after a contained solve panic (schema v2).
    pub quarantined: u64,
    /// Served responses carrying an explicit degraded guarantee (schema v2;
    /// still verified bit-identical to the cold referee).
    pub degraded_served: u64,
}

impl BenchRecord {
    /// Times `f`, recording its wall clock; `f` returns the simulated round
    /// count (0 for sequential reference code).
    pub fn measure(bench: &str, n: usize, f: impl FnOnce() -> u64) -> Self {
        let mut f = Some(f);
        Self::measure_min_of(bench, n, 1, move || (f.take().expect("one run"))())
    }

    /// Times `runs` executions of `f` and records the minimum wall clock —
    /// the documented bench methodology (minimum of N runs filters scheduler
    /// noise on shared boxes). Simulated rounds are taken from the last run
    /// (deterministic workloads return identical counts every time).
    pub fn measure_min_of(bench: &str, n: usize, runs: usize, mut f: impl FnMut() -> u64) -> Self {
        let mut best = u128::MAX;
        let mut rounds = 0;
        for _ in 0..runs.max(1) {
            let start = Instant::now();
            rounds = f();
            best = best.min(start.elapsed().as_nanos());
        }
        BenchRecord {
            bench: bench.to_string(),
            n,
            wall_ns: best,
            rounds,
            peak_rss_bytes: peak_rss_bytes(),
            ..BenchRecord::default()
        }
    }

    /// Attaches the canonical solver query label (builder-style).
    #[must_use]
    pub fn with_query(mut self, label: &str) -> Self {
        self.query = Some(label.to_string());
        self
    }

    /// Attaches the round-engine worker budget the run executed under
    /// (builder-style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches throughput-sweep fields: graph family, batch size, and
    /// queries per second (builder-style).
    #[must_use]
    pub fn with_throughput(mut self, family: &str, batch: usize, qps: f64) -> Self {
        self.family = Some(family.to_string());
        self.batch = Some(batch);
        self.qps = Some(qps);
        self
    }

    /// Attaches the amortized-vs-cold ratio (builder-style).
    #[must_use]
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        self.amortized_ratio = Some(ratio);
        self
    }

    /// Attaches the fault-free twin's rounds and wall clock (builder-style);
    /// the renderer derives the recovery-overhead ratios from them.
    #[must_use]
    pub fn with_healthy(mut self, rounds: u64, wall_ns: u128) -> Self {
        self.healthy_rounds = Some(rounds);
        self.healthy_wall_ns = Some(wall_ns);
        self
    }

    /// Attaches the serving-load measurement block (builder-style).
    #[must_use]
    pub fn with_serving(mut self, serving: ServingFields) -> Self {
        self.serving = Some(serving);
        self
    }

    /// Converts a scenario-engine report into a record carrying the scenario
    /// name, seed, and verification verdict.
    pub fn from_scenario(r: &ScenarioReport) -> Self {
        BenchRecord {
            bench: r.suite.to_string(),
            n: r.n,
            wall_ns: r.wall_ns,
            rounds: r.rounds,
            scenario: Some(r.scenario.clone()),
            seed: Some(r.seed),
            verdict: Some(r.verdict.as_str().to_string()),
            trace_events: Some(r.trace_events),
            top_phase: (!r.top_phase.is_empty()).then(|| r.top_phase.clone()),
            top_phase_rounds: (!r.top_phase.is_empty()).then_some(r.top_phase_rounds),
            ..BenchRecord::default()
        }
    }
}

/// Schema tag of the plain perf sweep (bump on breaking format changes).
/// v2: records produced through the solver facade carry the canonical
/// `"query"` label. v3: simulator-backed records carry the round-engine
/// `"threads"` budget, and wall clocks are the minimum of N interleaved runs.
/// v4: measured records carry best-effort `"peak_rss_bytes"`.
pub const SCHEMA: &str = "hybrid-bench/apsp-v4";

/// Schema tag of scenario-engine records. v2: every record additionally
/// carries the run's `"trace_events"` count and (when anything was charged)
/// the `"top_phase"` name with its `"top_phase_rounds"`; all v1 fields are
/// unchanged.
pub const SCHEMA_SCENARIOS: &str = "hybrid-bench/scenarios-v2";

/// Schema tag of the serving-throughput sweep: cold-vs-session wall clocks
/// for a mixed-query batch on one graph, with queries/sec and the
/// amortized-vs-cold ratio.
pub const SCHEMA_THROUGHPUT: &str = "hybrid-bench/throughput-v1";

/// Schema tag of the chaos recovery sweep: every `chaos-*` registry scenario
/// next to its fault-free twin, with the recovery overhead in simulated
/// rounds and wall-clock time.
pub const SCHEMA_CHAOS: &str = "hybrid-bench/chaos-v1";

/// Schema tag of the churn repair sweep: patch-vs-full
/// `Session::apply_delta` wall clocks on a bounded-growth graph at
/// `n ≥ 400` (the patch record's `amortized_vs_cold` is the full/patch
/// speedup), the damage-threshold sweep (each record carries its
/// `damage_threshold`, the delta's `dirty_fraction`, and the repair path as
/// the verdict), and the churn+chaos serving loop (`updates_applied` next to
/// the serving counters; `mismatches` must be 0).
pub const SCHEMA_CHURN: &str = "hybrid-bench/churn-v1";

/// Schema tag of the closed-loop serving sweep (`experiments --serve`): one
/// record per broker workload with latency percentiles, saturation qps, shed
/// rate, and cache hit/eviction counters (see [`ServingFields`]). v2: every
/// v1 field is unchanged; records additionally carry the fault-tolerant
/// serving counters (`retries`, `deadline_shed`, `breaker_rejected`,
/// `breaker_opens`, `breaker_probes`, `quarantined`, `degraded_served`).
pub const SCHEMA_SERVING: &str = "hybrid-bench/serving-v2";

/// Best-effort peak resident-set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`). `None` on platforms without procfs.
/// This is the process-lifetime high-water mark — monotone over a sweep; see
/// [`BenchRecord::peak_rss_bytes`] for how to attribute it.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Renders records as the `BENCH_*.json` document under the given schema tag.
pub fn render_with_schema(schema: &str, scale: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{schema}\",");
    let _ = writeln!(out, "  \"scale\": \"{scale}\",");
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let mut line = format!(
            "    {{\"bench\": \"{}\", \"n\": {}, \"wall_ns\": {}, \"rounds\": {}",
            escape(&r.bench),
            r.n,
            r.wall_ns,
            r.rounds
        );
        if let Some(query) = &r.query {
            let _ = write!(line, ", \"query\": \"{}\"", escape(query));
        }
        if let Some(threads) = r.threads {
            let _ = write!(line, ", \"threads\": {threads}");
        }
        if let Some(scenario) = &r.scenario {
            let _ = write!(line, ", \"scenario\": \"{}\"", escape(scenario));
        }
        if let Some(seed) = r.seed {
            let _ = write!(line, ", \"seed\": {seed}");
        }
        if let Some(verdict) = &r.verdict {
            let _ = write!(line, ", \"verdict\": \"{}\"", escape(verdict));
        }
        if let Some(family) = &r.family {
            let _ = write!(line, ", \"family\": \"{}\"", escape(family));
        }
        if let Some(batch) = r.batch {
            let _ = write!(line, ", \"batch\": {batch}");
        }
        if let Some(qps) = r.qps {
            let _ = write!(line, ", \"qps\": {qps:.3}");
        }
        if let Some(ratio) = r.amortized_ratio {
            let _ = write!(line, ", \"amortized_vs_cold\": {ratio:.3}");
        }
        if let (Some(hr), Some(hw)) = (r.healthy_rounds, r.healthy_wall_ns) {
            let _ = write!(line, ", \"healthy_rounds\": {hr}, \"healthy_wall_ns\": {hw}");
            let _ = write!(
                line,
                ", \"rounds_overhead\": {:.3}, \"wall_overhead\": {:.3}",
                r.rounds as f64 / hr.max(1) as f64,
                r.wall_ns as f64 / hw.max(1) as f64
            );
        }
        if let Some(rss) = r.peak_rss_bytes {
            let _ = write!(line, ", \"peak_rss_bytes\": {rss}");
        }
        if let Some(events) = r.trace_events {
            let _ = write!(line, ", \"trace_events\": {events}");
        }
        if let (Some(phase), Some(rounds)) = (&r.top_phase, r.top_phase_rounds) {
            let _ = write!(
                line,
                ", \"top_phase\": \"{}\", \"top_phase_rounds\": {rounds}",
                escape(phase)
            );
        }
        if let Some(s) = &r.serving {
            let _ = write!(
                line,
                ", \"clients\": {}, \"issued\": {}, \"served\": {}, \"shed\": {}, \
                 \"failed\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
                 \"qps\": {:.3}, \"shed_rate\": {:.4}, \"cache_hits\": {}, \
                 \"cache_admitted\": {}, \"cache_evicted\": {}, \"cache_bytes\": {}, \
                 \"verified\": {}, \"mismatches\": {}, \"batches\": {}, \"max_batch\": {}",
                s.clients,
                s.issued,
                s.served,
                s.shed,
                s.failed,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns,
                s.qps,
                s.shed_rate,
                s.cache_hits,
                s.cache_admitted,
                s.cache_evicted,
                s.cache_bytes,
                s.verified,
                s.mismatches,
                s.batches,
                s.max_batch
            );
            let _ = write!(
                line,
                ", \"retries\": {}, \"deadline_shed\": {}, \"breaker_rejected\": {}, \
                 \"breaker_opens\": {}, \"breaker_probes\": {}, \"quarantined\": {}, \
                 \"degraded_served\": {}",
                s.retries,
                s.deadline_shed,
                s.breaker_rejected,
                s.breaker_opens,
                s.breaker_probes,
                s.quarantined,
                s.degraded_served
            );
        }
        if let Some(t) = r.damage_threshold {
            let _ = write!(line, ", \"damage_threshold\": {t:.2}");
        }
        if let Some(d) = r.dirty_fraction {
            let _ = write!(line, ", \"dirty_fraction\": {d:.4}");
        }
        if let Some(u) = r.updates_applied {
            let _ = write!(line, ", \"updates_applied\": {u}");
        }
        let _ = writeln!(out, "{line}}}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders plain perf records (the [`SCHEMA`] document).
pub fn render(scale: &str, records: &[BenchRecord]) -> String {
    render_with_schema(SCHEMA, scale, records)
}

/// Renders scenario reports as the [`SCHEMA_SCENARIOS`] document.
pub fn render_scenarios(scale: &str, reports: &[ScenarioReport]) -> String {
    let records: Vec<BenchRecord> = reports.iter().map(BenchRecord::from_scenario).collect();
    render_with_schema(SCHEMA_SCENARIOS, scale, &records)
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shape() {
        let records = vec![
            BenchRecord {
                bench: "a".into(),
                n: 10,
                wall_ns: 123,
                rounds: 7,
                ..BenchRecord::default()
            },
            BenchRecord {
                bench: "b\"x".into(),
                n: 20,
                wall_ns: 456,
                rounds: 0,
                ..BenchRecord::default()
            },
        ];
        let s = render("small", &records);
        assert!(s.contains("\"schema\": \"hybrid-bench/apsp-v4\""));
        assert!(s.contains("\"scale\": \"small\""));
        assert!(s.contains("{\"bench\": \"a\", \"n\": 10, \"wall_ns\": 123, \"rounds\": 7},"));
        assert!(s.contains("\"bench\": \"b\\\"x\""));
        assert!(!s.contains("},\n  ]"), "no trailing comma");
        assert!(!s.contains("scenario"), "plain records omit scenario fields");
        assert!(!s.contains("query"), "records without a query label omit the field");
        assert!(!s.contains("threads"), "records without a thread budget omit the field");
        assert!(!s.contains("peak_rss"), "records without an RSS reading omit the field");
        assert!(!s.contains("qps"), "records without throughput fields omit them");
    }

    #[test]
    fn throughput_records_render_their_fields() {
        let r = BenchRecord {
            bench: "mixed32_session".into(),
            n: 400,
            wall_ns: 1000,
            rounds: 0,
            ..BenchRecord::default()
        }
        .with_throughput("e2-er", 32, 512.5)
        .with_ratio(3.75);
        let s = render_with_schema(SCHEMA_THROUGHPUT, "full", &[r]);
        assert!(s.contains("\"schema\": \"hybrid-bench/throughput-v1\""));
        assert!(s.contains("\"family\": \"e2-er\""));
        assert!(s.contains("\"batch\": 32"));
        assert!(s.contains("\"qps\": 512.500"));
        assert!(s.contains("\"amortized_vs_cold\": 3.750"));
    }

    #[test]
    fn chaos_records_render_overhead_ratios() {
        let r = BenchRecord {
            bench: "apsp".into(),
            n: 48,
            wall_ns: 3000,
            rounds: 90,
            scenario: Some("chaos-drop-p30-apsp".into()),
            verdict: Some("pass".into()),
            ..BenchRecord::default()
        }
        .with_healthy(60, 1000);
        let s = render_with_schema(SCHEMA_CHAOS, "small", &[r]);
        assert!(s.contains("\"schema\": \"hybrid-bench/chaos-v1\""));
        assert!(s.contains("\"healthy_rounds\": 60"));
        assert!(s.contains("\"healthy_wall_ns\": 1000"));
        assert!(s.contains("\"rounds_overhead\": 1.500"));
        assert!(s.contains("\"wall_overhead\": 3.000"));
    }

    #[test]
    fn churn_records_pin_their_schema_and_fields() {
        // The repair records: path as verdict, full/patch speedup as the
        // ratio, threshold and dirty fraction as churn-v1 fields.
        let patch = BenchRecord {
            bench: "churn-repair-patch".into(),
            n: 441,
            wall_ns: 1_000,
            rounds: 12,
            verdict: Some("patched".into()),
            family: Some("cycle".into()),
            damage_threshold: Some(0.75),
            dirty_fraction: Some(0.1034),
            ..BenchRecord::default()
        }
        .with_ratio(8.0);
        let mut serve = BenchRecord {
            bench: "churn-serve".into(),
            n: 48,
            wall_ns: 2_000,
            rounds: 99,
            ..BenchRecord::default()
        };
        serve.updates_applied = Some(7);
        let doc = render_with_schema(SCHEMA_CHURN, "small", &[patch, serve]);
        assert!(doc.contains("\"schema\": \"hybrid-bench/churn-v1\""));
        for field in [
            "\"bench\": \"churn-repair-patch\"",
            "\"n\": 441",
            "\"verdict\": \"patched\"",
            "\"family\": \"cycle\"",
            "\"amortized_vs_cold\": 8.000",
            "\"damage_threshold\": 0.75",
            "\"dirty_fraction\": 0.1034",
            "\"updates_applied\": 7",
        ] {
            assert!(doc.contains(field), "churn field {field} missing:\n{doc}");
        }
        // Records without the churn fields omit them entirely.
        let plain = BenchRecord {
            bench: "a".into(),
            n: 1,
            wall_ns: 1,
            rounds: 1,
            ..BenchRecord::default()
        };
        let doc = render_with_schema(SCHEMA_CHURN, "small", &[plain]);
        assert!(
            !doc.contains("damage_threshold")
                && !doc.contains("dirty_fraction")
                && !doc.contains("updates_applied"),
            "{doc}"
        );
    }

    #[test]
    fn serving_records_pin_v2_fields_and_preserve_v1_names() {
        let r = BenchRecord {
            bench: "serve-mixed".into(),
            n: 200,
            wall_ns: 5_000_000,
            rounds: 1234,
            ..BenchRecord::default()
        }
        .with_serving(ServingFields {
            clients: 6,
            issued: 120,
            served: 110,
            shed: 10,
            failed: 0,
            p50_ns: 1_000,
            p95_ns: 5_000,
            p99_ns: 9_000,
            qps: 220.5,
            shed_rate: 10.0 / 120.0,
            cache_hits: 100,
            cache_admitted: 4,
            cache_evicted: 2,
            cache_bytes: 65536,
            verified: 110,
            mismatches: 0,
            batches: 30,
            max_batch: 5,
            retries: 17,
            deadline_shed: 3,
            breaker_rejected: 2,
            breaker_opens: 1,
            breaker_probes: 1,
            quarantined: 1,
            degraded_served: 4,
        });
        let doc = render_with_schema(SCHEMA_SERVING, "full", &[r]);
        assert!(doc.contains("\"schema\": \"hybrid-bench/serving-v2\""));
        // Every serving-v1 field renders under its pinned, unchanged name,
        // and the v2 extension appends after them.
        for field in [
            "\"clients\": 6",
            "\"issued\": 120",
            "\"served\": 110",
            "\"shed\": 10",
            "\"failed\": 0",
            "\"p50_ns\": 1000",
            "\"p95_ns\": 5000",
            "\"p99_ns\": 9000",
            "\"qps\": 220.500",
            "\"shed_rate\": 0.0833",
            "\"cache_hits\": 100",
            "\"cache_admitted\": 4",
            "\"cache_evicted\": 2",
            "\"cache_bytes\": 65536",
            "\"verified\": 110",
            "\"mismatches\": 0",
            "\"batches\": 30",
            "\"max_batch\": 5",
            "\"retries\": 17",
            "\"deadline_shed\": 3",
            "\"breaker_rejected\": 2",
            "\"breaker_opens\": 1",
            "\"breaker_probes\": 1",
            "\"quarantined\": 1",
            "\"degraded_served\": 4",
        ] {
            assert!(doc.contains(field), "serving field {field} missing:\n{doc}");
        }
        let v1_prefix = doc.find("\"max_batch\"").expect("v1 tail");
        let v2_start = doc.find("\"retries\"").expect("v2 head");
        assert!(v2_start > v1_prefix, "v2 fields must append after the v1 block");
        // Records without the serving block omit every serving field.
        let plain = BenchRecord {
            bench: "a".into(),
            n: 1,
            wall_ns: 1,
            rounds: 1,
            ..BenchRecord::default()
        };
        let doc = render_with_schema(SCHEMA_SERVING, "small", &[plain]);
        assert!(!doc.contains("clients") && !doc.contains("shed_rate"), "{doc}");
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        // Best-effort: when procfs exists the reading must be a sane
        // process-sized number (more than a page, less than a terabyte).
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 4096 && rss < (1u64 << 40), "rss = {rss}");
        }
    }

    #[test]
    fn measure_times_and_captures_rounds() {
        let r = BenchRecord::measure("x", 5, || 42);
        assert_eq!(r.bench, "x");
        assert_eq!(r.n, 5);
        assert_eq!(r.rounds, 42);
        assert!(r.scenario.is_none() && r.seed.is_none() && r.verdict.is_none());
        assert!(r.query.is_none() && r.threads.is_none());
        let r = r.with_query("apsp-thm11").with_threads(4);
        assert_eq!(r.query.as_deref(), Some("apsp-thm11"));
        assert_eq!(r.threads, Some(4));
        let min3 = BenchRecord::measure_min_of("y", 3, 3, || 9);
        assert_eq!((min3.rounds, min3.n), (9, 3));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\nb"), "a\\u000ab");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
    }

    #[test]
    fn scenario_records_carry_name_seed_verdict() {
        let sc = hybrid_scenarios::find("sparse-grid-thm11").unwrap();
        let report = hybrid_scenarios::run_scenario(sc, 36);
        let doc = render_scenarios("small", &[report]);
        assert!(doc.contains("\"schema\": \"hybrid-bench/scenarios-v2\""));
        assert!(doc.contains("\"scenario\": \"sparse-grid-thm11\""));
        assert!(doc.contains(&format!("\"seed\": {}", sc.seed)));
        assert!(doc.contains("\"verdict\": \"pass\""));
    }

    #[test]
    fn scenarios_v2_pins_v1_fields_and_adds_trace_summary() {
        let sc = hybrid_scenarios::find("sparse-grid-thm11").unwrap();
        let report = hybrid_scenarios::run_scenario(sc, 36);
        let doc = render_scenarios("small", std::slice::from_ref(&report));
        // Every v1 field renders under its unchanged name …
        for field in [
            "\"bench\"",
            "\"n\"",
            "\"wall_ns\"",
            "\"rounds\"",
            "\"scenario\"",
            "\"seed\"",
            "\"verdict\"",
        ] {
            assert!(doc.contains(field), "v1 field {field} missing from v2 document");
        }
        // … and the v2 trace summary is present and consistent with the run.
        assert!(report.trace_events > 0);
        assert!(doc.contains(&format!("\"trace_events\": {}", report.trace_events)));
        assert!(doc.contains(&format!("\"top_phase\": \"{}\"", report.top_phase)));
        assert!(doc.contains(&format!("\"top_phase_rounds\": {}", report.top_phase_rounds)));
        assert!(report.top_phase_rounds <= report.rounds);
    }
}
