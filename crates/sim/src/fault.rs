//! First-class fault injection for the global channel.
//!
//! A [`FaultPlan`] describes *adversarial network behavior* the simulator
//! applies inside every [`crate::HybridNet::exchange_into`] call: global
//! messages lost with a fixed probability, and nodes that crash at a given
//! round and fall silent (they neither send nor receive global messages from
//! then on). Faults model the environment, not the algorithm — algorithms keep
//! their normal code path and the simulator decides what the network delivers.
//!
//! Three invariants make fault runs verifiable:
//!
//! * **Determinism** — drops and corruptions are driven by SplitMix64 streams
//!   seeded from the plan (two independent streams, so enabling one fault
//!   class never perturbs the other), consumed in message order; the same
//!   plan on the same execution faults the same messages.
//! * **Loss, never silent corruption** — a delivered message is always the
//!   message that was sent. The corruption fault class flips payload bits in
//!   flight, but the reliable layer's per-message checksum detects every flip
//!   and converts it into a *loss* (the flipped payload is discarded and
//!   retransmitted); algorithms never observe a corrupted payload. Distance
//!   estimates computed from surviving messages therefore remain upper bounds
//!   (missing a message can only cost an improvement), which is exactly what
//!   the scenario verification layer checks for lossy runs.
//! * **Recovery is charged, never discounted** — faults are not merely
//!   tolerated or aborted on: [`crate::HybridNet::set_reliable`] turns on an
//!   ack/retransmission layer that re-sends lost messages (paying extra
//!   simulated rounds for every retry wave) and declares a node dead once its
//!   acks stop arriving past a deterministic timeout, so protocols can
//!   *recover* and degrade explicitly instead of silently absorbing loss.
//!
//! The per-round caps are *not* faults: degenerate bandwidth is configured
//! through [`crate::HybridConfig`] (see [`crate::HybridConfig::starved`]).

use hybrid_graph::NodeId;

use crate::net::SimError;

/// A scheduled node crash: from the moment `at_round` rounds have elapsed on
/// the network clock, `node` is silent (sends and receives nothing globally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashing node.
    pub node: NodeId,
    /// The round-clock value at which the crash takes effect.
    pub at_round: u64,
}

/// A declarative fault plan for one execution.
///
/// The default plan is trivial (no drops, no crashes) and costs nothing on the
/// exchange hot path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1)` that any individual global message is lost.
    pub drop_prob: f64,
    /// Probability in `[0, 0.5)` that any individual global message has
    /// payload bits flipped in flight. The reliable layer's checksum detects
    /// every flip and converts it into a loss (discard + retransmit); the
    /// fire-and-forget engine discards the flipped message outright. The
    /// bound is tighter than `drop_prob`'s because every corruption costs a
    /// retransmission wave: past 0.5 the expected retry count diverges
    /// before the retransmission-attempt cap (8) can save the run.
    pub corrupt_prob: f64,
    /// Scheduled node crashes.
    pub crashes: Vec<Crash>,
    /// Seed of the deterministic fault streams (drop and corruption streams
    /// derive independently from it).
    pub seed: u64,
}

/// Salt deriving the corruption stream's SplitMix64 state from the plan seed,
/// so the drop and corruption streams are independent: enabling corruption
/// never shifts which messages the drop stream loses (healthy- and lossy-path
/// pins stay bit-identical).
const CORRUPT_STREAM_SALT: u64 = 0xC0DE_FA17_B17F_11B5;

impl FaultPlan {
    /// Plan dropping each global message independently with probability `prob`.
    pub fn drops(prob: f64, seed: u64) -> Self {
        FaultPlan { drop_prob: prob, corrupt_prob: 0.0, crashes: Vec::new(), seed }
    }

    /// Plan flipping payload bits of each global message independently with
    /// probability `prob`.
    pub fn corruption(prob: f64, seed: u64) -> Self {
        FaultPlan { drop_prob: 0.0, corrupt_prob: prob, crashes: Vec::new(), seed }
    }

    /// Plan crashing the given nodes at the given rounds.
    pub fn node_crashes(crashes: Vec<Crash>) -> Self {
        FaultPlan { drop_prob: 0.0, corrupt_prob: 0.0, crashes, seed: 0 }
    }

    /// `true` if the plan can never remove or corrupt a message.
    pub fn is_trivial(&self) -> bool {
        self.drop_prob == 0.0 && self.corrupt_prob == 0.0 && self.crashes.is_empty()
    }

    /// Validates the plan (the drop probability must be in `[0, 1)`; a plan
    /// that drops *everything* would make retry-style protocols loop forever.
    /// The corruption probability must be in `[0, 0.5)` — see
    /// [`FaultPlan::corrupt_prob`]).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] with the offending field named.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.drop_prob.is_finite() || !(0.0..1.0).contains(&self.drop_prob) {
            return Err(SimError::InvalidConfig {
                reason: format!("drop_prob must be in [0, 1), got {}", self.drop_prob),
            });
        }
        if !self.corrupt_prob.is_finite() || !(0.0..0.5).contains(&self.corrupt_prob) {
            return Err(SimError::InvalidConfig {
                reason: format!("corrupt_prob must be in [0, 0.5), got {}", self.corrupt_prob),
            });
        }
        Ok(())
    }

    /// Validates the plan against a concrete network of `n` nodes: everything
    /// [`FaultPlan::validate`] checks, plus the crash schedule — a plan whose
    /// schedule kills *every* node before the round clock starts describes a
    /// fully-dead network on which no protocol (and no recovery layer) can
    /// make progress.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] with the offending field named.
    pub fn validate_for(&self, n: usize) -> Result<(), SimError> {
        self.validate()?;
        if n > 0 {
            let mut dead_at_zero = vec![false; n];
            for c in &self.crashes {
                if c.at_round == 0 && c.node.index() < n {
                    dead_at_zero[c.node.index()] = true;
                }
            }
            if dead_at_zero.iter().all(|&d| d) {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "crash schedule kills all {n} nodes at round 0 (fully-dead network)"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Installed runtime state of a [`FaultPlan`].
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Per-node crash round (`u64::MAX` = never crashes).
    crashed_at: Vec<u64>,
    /// Drop probability.
    drop_prob: f64,
    /// SplitMix64 state of the drop stream.
    rng_state: u64,
    /// Corruption probability.
    corrupt_prob: f64,
    /// SplitMix64 state of the corruption stream — independent from the drop
    /// stream (salted derivation of the plan seed), so either fault class can
    /// be toggled without perturbing the other's decisions.
    corrupt_rng_state: u64,
    /// Nodes the reliable layer's failure detector has declared dead; sticky
    /// for the lifetime of the installed plan.
    declared_dead: Vec<bool>,
}

impl FaultState {
    pub(crate) fn install(plan: &FaultPlan, n: usize) -> Self {
        // Repeated `Crash` entries for one node are deduplicated here: each
        // node keeps only its earliest scheduled crash round.
        let mut crashed_at = vec![u64::MAX; n];
        for c in &plan.crashes {
            if c.node.index() < n {
                crashed_at[c.node.index()] = crashed_at[c.node.index()].min(c.at_round);
            }
        }
        FaultState {
            crashed_at,
            drop_prob: plan.drop_prob,
            rng_state: plan.seed,
            corrupt_prob: plan.corrupt_prob,
            corrupt_rng_state: plan.seed ^ CORRUPT_STREAM_SALT,
            declared_dead: vec![false; n],
        }
    }

    /// Has the failure detector declared `v` dead?
    pub(crate) fn is_declared_dead(&self, v: NodeId) -> bool {
        self.declared_dead.get(v.index()).copied().unwrap_or(false)
    }

    /// Marks `v` as declared dead; returns `true` on the first declaration
    /// (so the caller can count unique declarations).
    pub(crate) fn declare_dead(&mut self, v: NodeId) -> bool {
        match self.declared_dead.get_mut(v.index()) {
            Some(d) if !*d => {
                *d = true;
                true
            }
            _ => false,
        }
    }

    /// The nodes currently declared dead by the failure detector.
    pub(crate) fn declared_dead_nodes(&self) -> Vec<NodeId> {
        self.declared_dead
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Is `v` alive at round-clock value `round`? Out-of-range addresses are
    /// treated as alive so they still surface as
    /// [`SimError::AddressOutOfRange`] instead of being silently dropped.
    pub(crate) fn alive(&self, v: NodeId, round: u64) -> bool {
        self.crashed_at.get(v.index()).is_none_or(|&at| round < at)
    }

    /// Draws the next drop decision from the deterministic drop stream.
    pub(crate) fn drop_next(&mut self) -> bool {
        if self.drop_prob <= 0.0 {
            return false;
        }
        splitmix_unit(&mut self.rng_state) < self.drop_prob
    }

    /// Draws the next bit-flip decision from the deterministic corruption
    /// stream (independent of the drop stream).
    pub(crate) fn corrupt_next(&mut self) -> bool {
        if self.corrupt_prob <= 0.0 {
            return false;
        }
        splitmix_unit(&mut self.corrupt_rng_state) < self.corrupt_prob
    }
}

/// One SplitMix64 step; the high 53 bits give a uniform unit double.
fn splitmix_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan() {
        assert!(FaultPlan::default().is_trivial());
        assert!(!FaultPlan::drops(0.1, 1).is_trivial());
        assert!(!FaultPlan::corruption(0.1, 1).is_trivial());
        let crash = FaultPlan::node_crashes(vec![Crash { node: NodeId::new(2), at_round: 5 }]);
        assert!(!crash.is_trivial());
        assert!(crash.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        for p in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let err = FaultPlan::drops(p, 0).validate().unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig { .. }), "p = {p}");
        }
        assert!(FaultPlan::drops(0.0, 0).validate().is_ok());
        assert!(FaultPlan::drops(0.999, 0).validate().is_ok());
    }

    #[test]
    fn validate_rejects_corruption_probabilities_outside_half_open_half() {
        for p in [0.5, 0.75, 1.0, -0.1, f64::NAN, f64::INFINITY] {
            let err = FaultPlan::corruption(p, 0).validate().unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig { .. }), "p = {p}");
        }
        assert!(FaultPlan::corruption(0.0, 0).validate().is_ok());
        assert!(FaultPlan::corruption(0.499, 0).validate().is_ok());
        // validate_for inherits the same check.
        assert!(FaultPlan::corruption(0.5, 0).validate_for(4).is_err());
    }

    #[test]
    fn corruption_stream_is_deterministic_and_independent_of_drops() {
        let plan = FaultPlan { corrupt_prob: 0.25, ..FaultPlan::drops(0.25, 42) };
        let mut a = FaultState::install(&plan, 4);
        let mut b = FaultState::install(&plan, 4);
        let ca: Vec<bool> = (0..10_000).map(|_| a.corrupt_next()).collect();
        let cb: Vec<bool> = (0..10_000).map(|_| b.corrupt_next()).collect();
        assert_eq!(ca, cb, "same seed, same corruption stream");
        let hits = ca.iter().filter(|&&c| c).count();
        assert!((2000..3000).contains(&hits), "≈25% of 10k, got {hits}");
        // Independence: the drop stream is untouched by corruption draws —
        // a state that consumed 10k corruption decisions still produces the
        // same drop stream as a fresh one.
        let mut fresh_state = FaultState::install(&plan, 4);
        let da: Vec<bool> = (0..100).map(|_| a.drop_next()).collect();
        let df: Vec<bool> = (0..100).map(|_| fresh_state.drop_next()).collect();
        assert_eq!(da, df, "corruption draws must not advance the drop stream");
        // A drop-only plan never corrupts.
        let mut drop_only = FaultState::install(&FaultPlan::drops(0.1, 1), 4);
        assert!((0..100).all(|_| !drop_only.corrupt_next()));
    }

    #[test]
    fn drop_stream_is_deterministic_and_calibrated() {
        let plan = FaultPlan::drops(0.25, 42);
        let mut a = FaultState::install(&plan, 4);
        let mut b = FaultState::install(&plan, 4);
        let da: Vec<bool> = (0..10_000).map(|_| a.drop_next()).collect();
        let db: Vec<bool> = (0..10_000).map(|_| b.drop_next()).collect();
        assert_eq!(da, db, "same seed, same stream");
        let hits = da.iter().filter(|&&d| d).count();
        assert!((2000..3000).contains(&hits), "≈25% of 10k, got {hits}");
    }

    #[test]
    fn validate_for_rejects_fully_dead_networks() {
        let all_dead = FaultPlan::node_crashes(
            (0..4).map(|i| Crash { node: NodeId::new(i), at_round: 0 }).collect(),
        );
        let err = all_dead.validate_for(4).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
        // One survivor (crashes later) makes the plan legal again …
        let mut crashes: Vec<Crash> =
            (0..3).map(|i| Crash { node: NodeId::new(i), at_round: 0 }).collect();
        crashes.push(Crash { node: NodeId::new(3), at_round: 5 });
        assert!(FaultPlan::node_crashes(crashes).validate_for(4).is_ok());
        // … and the same schedule on a larger network is fine too.
        assert!(all_dead.validate_for(5).is_ok());
        // Plain probability validation still applies.
        assert!(FaultPlan::drops(1.5, 0).validate_for(4).is_err());
    }

    #[test]
    fn install_dedups_repeated_crash_entries() {
        let plan = FaultPlan::node_crashes(vec![
            Crash { node: NodeId::new(2), at_round: 9 },
            Crash { node: NodeId::new(2), at_round: 9 },
            Crash { node: NodeId::new(2), at_round: 4 },
        ]);
        let st = FaultState::install(&plan, 4);
        assert!(st.alive(NodeId::new(2), 3));
        assert!(!st.alive(NodeId::new(2), 4), "earliest of the duplicates wins");
    }

    #[test]
    fn declared_dead_is_sticky_and_counted_once() {
        let plan = FaultPlan::node_crashes(vec![Crash { node: NodeId::new(1), at_round: 0 }]);
        let mut st = FaultState::install(&plan, 4);
        assert!(!st.is_declared_dead(NodeId::new(1)));
        assert!(st.declare_dead(NodeId::new(1)), "first declaration reports a transition");
        assert!(!st.declare_dead(NodeId::new(1)), "re-declaration is not a transition");
        assert!(st.is_declared_dead(NodeId::new(1)));
        assert_eq!(st.declared_dead_nodes(), vec![NodeId::new(1)]);
        assert!(!st.declare_dead(NodeId::new(99)), "out of range is a no-op");
    }

    #[test]
    fn crash_schedule_and_bounds() {
        let plan = FaultPlan::node_crashes(vec![
            Crash { node: NodeId::new(1), at_round: 3 },
            Crash { node: NodeId::new(1), at_round: 7 }, // earliest crash wins
            Crash { node: NodeId::new(9), at_round: 0 }, // out of range: ignored
        ]);
        let st = FaultState::install(&plan, 4);
        assert!(st.alive(NodeId::new(1), 2));
        assert!(!st.alive(NodeId::new(1), 3));
        assert!(!st.alive(NodeId::new(1), 100));
        assert!(st.alive(NodeId::new(0), 100));
        assert!(st.alive(NodeId::new(9), 0), "out-of-range stays 'alive' for the address check");
    }
}
