//! The token routing protocol (§2, Algorithms 2–4, Theorem 2.2) — the paper's
//! central tool.
//!
//! Instance: senders `S` must deliver point-to-point tokens to receivers `R`
//! (each sender ≤ `k_S` tokens, each receiver ≤ `k_R`; receivers know the labels
//! they are owed). With `S, R` sampled at rates `p_S, p_R`, the protocol runs in
//! `Õ(K/n + √k_S + √k_R)` rounds:
//!
//! 1. **Helper sets** (Algorithm 1): `µ_S = ⌊min(√k_S, 1/p_S)⌋` helpers per
//!    sender, `µ_R` per receiver.
//! 2. **Preparation** (Algorithm 3): tokens / expected labels are balanced
//!    round-robin over each node's helpers through local flooding.
//! 3. **Routing scheme** (Algorithm 4): sender-helpers push tokens to
//!    pseudo-random *intermediate* nodes `h(s, r, i)` given by a shared
//!    `Θ(log n)`-wise independent hash (seed `O(log² n)` bits, broadcast in
//!    `Õ(1)` rounds); receiver-helpers then *request* their labels from the same
//!    intermediates, which answer in the following round. All queues are paced
//!    to `O(log n)` messages per node per round; Lemma D.2 guarantees no
//!    receive-side overload w.h.p., which the simulator verifies.
//! 4. Receivers collect their tokens from their helpers via local flooding.

use hybrid_graph::graph::log2_ceil;
use hybrid_graph::NodeId;
use hybrid_sim::{derive_seed, par, Envelope, FlatInboxes, HybridNet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aggregate::broadcast_words;
use crate::error::HybridError;
use crate::hash::{independence_for, KWiseHash, TokenLabel};
use crate::helpers::compute_helpers;

/// A routable token: label (§2.2) plus opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<T> {
    /// The label `(s, r, i)`.
    pub label: TokenLabel,
    /// Payload (`O(log n)` bits in the model).
    pub payload: T,
}

impl<T> Token<T> {
    /// Creates a token.
    pub fn new(s: NodeId, r: NodeId, i: u32, payload: T) -> Self {
        Token { label: TokenLabel::new(s, r, i), payload }
    }
}

/// Sampling-rate context of Theorem 2.2: `S` and `R` were sampled with
/// probabilities `p_S` and `p_R` (this determines the helper budget `1/p`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingRates {
    /// Sampling probability of the sender set.
    pub p_s: f64,
    /// Sampling probability of the receiver set.
    pub p_r: f64,
}

impl RoutingRates {
    /// Both sides are the full node set (`p = 1`): helpers degenerate to the
    /// nodes themselves.
    pub fn dense() -> Self {
        RoutingRates { p_s: 1.0, p_r: 1.0 }
    }
}

/// Result of a routing run.
///
/// Node IDs are dense, so deliveries are stored in a flat per-node table
/// (`delivered[r]` is receiver `r`'s token list) — no hashing on any lookup.
#[derive(Debug, Clone)]
pub struct RoutedTokens<T> {
    /// Tokens delivered per receiver, indexed by node ID.
    delivered: Vec<Vec<Token<T>>>,
    /// Helper budgets used.
    pub mu_s: usize,
    /// Helper budgets used.
    pub mu_r: usize,
    /// Rounds consumed by this routing instance.
    pub rounds: u64,
}

impl<T> RoutedTokens<T> {
    /// Tokens delivered to `r` (sorted by label).
    pub fn for_receiver(&self, r: NodeId) -> &[Token<T>] {
        self.delivered.get(r.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total tokens delivered.
    pub fn len(&self) -> usize {
        self.delivered.iter().map(Vec::len).sum()
    }

    /// Whether nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.delivered.iter().all(Vec::is_empty)
    }
}

/// Computes the helper budget `µ` (Algorithm 2 sets `µ = ⌊min(√k, 1/p)⌋`).
///
/// We additionally divide by `⌈log₂ n⌉`: the setup cost is dominated by the
/// ruling set (`2µ log n` rounds) while the routing phase runs at
/// `k/(µ · log n)` rounds thanks to the `Θ(log n)` per-round message budget —
/// balancing the two gives `µ* = Θ(√k / log n)`, which keeps the total at the
/// same `Õ(√k)` as the paper's choice but with the crossover against the
/// SODA'20 baseline visible at simulable `n` (experiment E2).
pub fn mu_for(k: usize, p: f64, n: usize) -> usize {
    let budget = if p <= 0.0 { f64::MAX } else { 1.0 / p };
    let mu = (k as f64).sqrt().min(budget);
    ((mu / log2_ceil(n) as f64).floor() as usize).clamp(1, (mu.floor() as usize).max(1))
}

/// A reusable routing context: helper sets and the shared hash are
/// established once (Algorithm 2 step 1 + the seed broadcast of Lemma 2.3),
/// then any number of token batches between the same sender/receiver
/// populations can be routed (Algorithms 3–4 per batch). This is exactly the
/// structure the CLIQUE-on-skeleton simulation needs: Corollary 4.1 routes one
/// batch per simulated CLIQUE round over the same node set.
#[derive(Debug)]
pub struct RoutingSession {
    senders: Vec<NodeId>,
    receivers: Vec<NodeId>,
    hs: crate::helpers::HelperSets,
    hr: crate::helpers::HelperSets,
    hash: KWiseHash,
    mu_s: usize,
    mu_r: usize,
}

impl RoutingSession {
    /// Establishes helper sets sized for workloads of up to `expected_k_s`
    /// tokens per sender and `expected_k_r` per receiver, and broadcasts the
    /// shared hash seed.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the seed broadcast.
    #[allow(clippy::too_many_arguments)] // mirrors Theorem 2.2's parameter list
    pub fn establish(
        net: &mut HybridNet<'_>,
        senders: &[NodeId],
        receivers: &[NodeId],
        rates: RoutingRates,
        expected_k_s: usize,
        expected_k_r: usize,
        seed: u64,
        phase: &str,
    ) -> Result<Self, HybridError> {
        let n = net.n();
        let mu_s = mu_for(expected_k_s, rates.p_s, n);
        let mu_r = mu_for(expected_k_r, rates.p_r, n);
        // Algorithm 2 step 1: helper sets. µ = 1 means every node is its own
        // helper — zero setup rounds.
        let hs = if mu_s > 1 {
            compute_helpers(net, senders, mu_s, derive_seed(seed, 1), &format!("{phase}:helpers-s"))
        } else {
            crate::helpers::HelperSets::trivial(senders, n)
        };
        let hr = if mu_r > 1 {
            compute_helpers(
                net,
                receivers,
                mu_r,
                derive_seed(seed, 2),
                &format!("{phase}:helpers-r"),
            )
        } else {
            crate::helpers::HelperSets::trivial(receivers, n)
        };
        // Shared hash function: sampled at the minimum-ID sender, seed
        // broadcast over the global network (O(log² n) bits ⇒ Õ(1) rounds;
        // Lemma 2.3).
        let k_ind = independence_for(n);
        let mut hash_rng = StdRng::seed_from_u64(derive_seed(seed, 3));
        let hash = KWiseHash::sample(k_ind, n as u64, &mut hash_rng);
        let seed_origin = senders.iter().copied().min().unwrap_or(NodeId::new(0));
        broadcast_words(net, seed_origin, &hash.seed_words(), &format!("{phase}:hash-seed"))?;
        Ok(RoutingSession {
            senders: senders.to_vec(),
            receivers: receivers.to_vec(),
            hs,
            hr,
            hash,
            mu_s,
            mu_r,
        })
    }

    /// Helper budgets `(µ_S, µ_R)` of this session.
    pub fn budgets(&self) -> (usize, usize) {
        (self.mu_s, self.mu_r)
    }

    /// Like [`RoutingSession::establish`], but with *explicit* helper budgets
    /// instead of the [`mu_for`] policy — the knob of ablation experiment E14
    /// (µ = 1: no helpers; µ = √k: the paper's asymptotic choice; in between:
    /// the rebalanced default).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the seed broadcast.
    pub fn establish_with_budgets(
        net: &mut HybridNet<'_>,
        senders: &[NodeId],
        receivers: &[NodeId],
        mu_s: usize,
        mu_r: usize,
        seed: u64,
        phase: &str,
    ) -> Result<Self, HybridError> {
        assert!(mu_s >= 1 && mu_r >= 1, "budgets must be positive");
        let n = net.n();
        let hs = if mu_s > 1 {
            compute_helpers(net, senders, mu_s, derive_seed(seed, 1), &format!("{phase}:helpers-s"))
        } else {
            crate::helpers::HelperSets::trivial(senders, n)
        };
        let hr = if mu_r > 1 {
            compute_helpers(
                net,
                receivers,
                mu_r,
                derive_seed(seed, 2),
                &format!("{phase}:helpers-r"),
            )
        } else {
            crate::helpers::HelperSets::trivial(receivers, n)
        };
        let k_ind = independence_for(n);
        let mut hash_rng = StdRng::seed_from_u64(derive_seed(seed, 3));
        let hash = KWiseHash::sample(k_ind, n as u64, &mut hash_rng);
        let seed_origin = senders.iter().copied().min().unwrap_or(NodeId::new(0));
        broadcast_words(net, seed_origin, &hash.seed_words(), &format!("{phase}:hash-seed"))?;
        Ok(RoutingSession {
            senders: senders.to_vec(),
            receivers: receivers.to_vec(),
            hs,
            hr,
            hash,
            mu_s,
            mu_r,
        })
    }

    /// Routes one batch of tokens (Algorithms 3–4).
    ///
    /// # Errors
    ///
    /// * [`HybridError::DuplicateTokenLabel`] for non-unique labels within the
    ///   batch.
    /// * [`HybridError::MissingTokens`] if delivery is incomplete
    ///   (protocol-bug guard).
    /// * Simulator errors (congestion under the strict policy).
    pub fn route<T: Clone + Send + Sync + 'static>(
        &self,
        net: &mut HybridNet<'_>,
        tokens: Vec<Token<T>>,
        phase: &str,
    ) -> Result<RoutedTokens<T>, HybridError> {
        let start_rounds = net.rounds();
        let n = net.n();

        // Validate label uniqueness (sort-based: no hashing on the hot path).
        let mut label_scratch: Vec<TokenLabel> = tokens.iter().map(|t| t.label).collect();
        label_scratch.sort_unstable();
        for w in label_scratch.windows(2) {
            if w[0] == w[1] {
                return Err(HybridError::DuplicateTokenLabel {
                    sender: w[0].s,
                    receiver: w[0].r,
                    index: w[0].i,
                });
            }
        }
        // Split off self-addressed tokens (delivered for free).
        let mut delivered: Vec<Vec<Token<T>>> = (0..n).map(|_| Vec::new()).collect();
        let (local, mut routable): (Vec<_>, Vec<_>) =
            tokens.into_iter().partition(|t| t.label.s == t.label.r);
        for t in local {
            delivered[t.label.r.index()].push(t);
        }
        if routable.is_empty() {
            finish(net.round_threads(), &mut delivered);
            return Ok(RoutedTokens { delivered, mu_s: self.mu_s, mu_r: self.mu_r, rounds: 0 });
        }
        let mut per_receiver: Vec<u32> = vec![0; n];
        for t in &routable {
            per_receiver[t.label.r.index()] += 1;
        }

        // Algorithm 3: preparation — balanced round-robin assignment of
        // tokens to sender-helpers and of labels to receiver-helpers,
        // distributed by local flooding over the (measured) cluster radii
        // (Fact 2.4). Trivial helper families need no flooding.
        let prep_radius = 2 * (self.hs.radius + self.hr.radius);
        if prep_radius > 0 {
            net.charge_local(prep_radius as u64, &format!("{phase}:prep-detect"));
            net.charge_local(prep_radius as u64, &format!("{phase}:prep-flood"));
        }

        // Sender side: token j of sender s (sorted by label) goes to helper
        // hs[s][j mod |H_s|]. One sort by label groups the batch by sender
        // *and* orders each sender's tokens — no per-sender map or re-sort.
        // The labels are copied out first (they feed the receiver side), so
        // the tokens themselves *move* to their helpers instead of being
        // cloned — payloads are never duplicated.
        routable.sort_by_key(|t| t.label);
        let mut rlabels: Vec<TokenLabel> = routable.iter().map(|t| t.label).collect();
        let mut helper_tokens: Vec<Vec<Token<T>>> = (0..n).map(|_| Vec::new()).collect();
        {
            let mut cur_s: Option<NodeId> = None;
            let mut j_in_group = 0usize;
            for t in routable {
                if cur_s != Some(t.label.s) {
                    cur_s = Some(t.label.s);
                    j_in_group = 0;
                }
                let h = self.hs.helpers(t.label.s);
                helper_tokens[h[j_in_group % h.len()].index()].push(t);
                j_in_group += 1;
            }
        }
        // Receiver side: expected label j of receiver r goes to helper
        // hr[r][j mod |H'_r|]. Same trick: sort labels by (receiver, label).
        rlabels.sort_unstable_by_key(|l| (l.r, *l));
        let mut helper_requests: Vec<Vec<TokenLabel>> = (0..n).map(|_| Vec::new()).collect();
        {
            let mut i = 0;
            while i < rlabels.len() {
                let r = rlabels[i].r;
                let h = self.hr.helpers(r);
                let mut j = i;
                while j < rlabels.len() && rlabels[j].r == r {
                    helper_requests[h[(j - i) % h.len()].index()].push(rlabels[j]);
                    j += 1;
                }
                i = j;
            }
        }

        // Algorithm 4 phase A: sender-helpers push tokens to intermediates.
        let mut queues: Vec<Vec<Envelope<Token<T>>>> = (0..n).map(|_| Vec::new()).collect();
        for (v, ts) in helper_tokens.into_iter().enumerate() {
            for t in ts {
                let mid = self.hash.node_for(t.label);
                queues[v].push(Envelope::new(NodeId::new(v), mid, t));
            }
        }
        let mut inboxes = net.drain_queues(&format!("{phase}:to-intermediates"), queues)?;
        // Intermediate stores: per node a label-sorted arena split into
        // parallel label/payload arrays (binary-search lookup on the packed
        // label array, `take()` on answer) — the struct-of-arrays layout
        // drops the per-entry padding of the former `(label, Option<T>)`
        // tuples. Construction and the per-node label sorts are independent
        // per intermediate — sharded across the round-engine worker budget.
        let threads = net.round_threads();
        let shard_stores = par::map_shards_mut(threads, &mut inboxes, |_, shard| {
            shard
                .iter_mut()
                .map(|msgs| {
                    let mut tokens: Vec<Token<T>> = msgs.drain(..).map(|(_, t)| t).collect();
                    tokens.sort_unstable_by_key(|t| t.label);
                    let mut store = IntermediateStore {
                        labels: Vec::with_capacity(tokens.len()),
                        payloads: Vec::with_capacity(tokens.len()),
                    };
                    for t in tokens {
                        store.labels.push(t.label);
                        store.payloads.push(Some(t.payload));
                    }
                    store
                })
                .collect::<Vec<_>>()
        });
        let mut intermediate_store: Vec<IntermediateStore<T>> =
            shard_stores.into_iter().flatten().collect();

        // Algorithm 4 phase B: receiver-helpers request labels; intermediates
        // answer in the next round. Requests and responses are interleaved,
        // each side paced to the send cap. The per-round exchanges reuse one
        // outbox and one flat-inbox arena each — no allocation per round.
        let cap = net.send_cap();
        let req_phase = format!("{phase}:requests");
        let resp_phase = format!("{phase}:responses");
        let mut req_queues: Vec<std::collections::VecDeque<Envelope<TokenLabel>>> =
            (0..n).map(|_| std::collections::VecDeque::new()).collect();
        for (v, labels) in helper_requests.iter().enumerate() {
            for &lab in labels {
                req_queues[v].push_back(Envelope::new(
                    NodeId::new(v),
                    self.hash.node_for(lab),
                    lab,
                ));
            }
        }
        let mut resp_queues: Vec<std::collections::VecDeque<Envelope<Token<T>>>> =
            (0..n).map(|_| std::collections::VecDeque::new()).collect();
        let mut helper_received: Vec<Vec<Token<T>>> = (0..n).map(|_| Vec::new()).collect();
        let mut req_outbox: Vec<Envelope<TokenLabel>> = Vec::new();
        let mut req_flat: FlatInboxes<TokenLabel> = FlatInboxes::new();
        let mut resp_outbox: Vec<Envelope<Token<T>>> = Vec::new();
        let mut resp_flat: FlatInboxes<Token<T>> = FlatInboxes::new();
        loop {
            let any_req = req_queues.iter().any(|q| !q.is_empty());
            let any_resp = resp_queues.iter().any(|q| !q.is_empty());
            if !any_req && !any_resp {
                break;
            }
            if any_req {
                req_outbox.clear();
                for q in req_queues.iter_mut() {
                    let take = cap.min(q.len());
                    req_outbox.extend(q.drain(..take));
                }
                net.exchange_into(&req_phase, &mut req_outbox, &mut req_flat)?;
                // Every intermediate answers its own requests — the per-node
                // protocol step is sharded by receiver: shard `t` owns a
                // contiguous band of intermediates (their stores and response
                // queues), so the parallel answer step is bit-identical to
                // the sequential `mid = 0..n` sweep, including which error
                // surfaces first (lowest failing shard reports the lowest
                // failing intermediate).
                let results = par::map_shards_mut2(
                    threads,
                    n,
                    (&mut intermediate_store, 1),
                    (&mut resp_queues, 1),
                    |start, stores, resps| answer_requests(start, stores, resps, &req_flat),
                );
                for r in results {
                    r?;
                }
            }
            if resp_queues.iter().any(|q| !q.is_empty()) {
                resp_outbox.clear();
                for q in resp_queues.iter_mut() {
                    let take = cap.min(q.len());
                    resp_outbox.extend(q.drain(..take));
                }
                net.exchange_into(&resp_phase, &mut resp_outbox, &mut resp_flat)?;
                resp_flat.drain_into(|v, (_, t)| helper_received[v].push(t));
            }
        }

        // Final step: receivers collect from their helpers via local flooding
        // over the receiver clusters (free when every receiver is its own
        // helper).
        if self.hr.radius > 0 {
            net.charge_local((2 * self.hr.radius) as u64, &format!("{phase}:collect"));
        }
        for ts in helper_received {
            for t in ts {
                delivered[t.label.r.index()].push(t);
            }
        }

        // Completeness guard.
        for r in 0..n {
            let expected = per_receiver[r] as usize;
            if expected == 0 {
                continue;
            }
            let got = delivered[r].len();
            let local_extra = delivered[r].iter().filter(|t| t.label.s == t.label.r).count();
            if got - local_extra != expected {
                return Err(HybridError::MissingTokens {
                    receiver: NodeId::new(r),
                    expected,
                    got: got - local_extra,
                });
            }
        }
        finish(threads, &mut delivered);
        Ok(RoutedTokens {
            delivered,
            mu_s: self.mu_s,
            mu_r: self.mu_r,
            rounds: net.rounds() - start_rounds,
        })
    }

    /// The sender population of the session.
    pub fn senders(&self) -> &[NodeId] {
        &self.senders
    }

    /// The receiver population of the session.
    pub fn receivers(&self) -> &[NodeId] {
        &self.receivers
    }
}

/// Runs the token routing protocol end to end (Algorithm 2): establishes a
/// one-shot [`RoutingSession`] sized for this batch's workload and routes it.
///
/// `senders` / `receivers` must cover all token endpoints. Tokens with
/// `s == r` are delivered for free (no communication needed).
///
/// # Errors
///
/// * [`HybridError::DuplicateTokenLabel`] for non-unique labels.
/// * [`HybridError::MissingTokens`] if delivery is incomplete (protocol-bug
///   guard).
/// * Simulator errors (congestion under the strict policy).
pub fn route_tokens<T: Clone + Send + Sync + 'static>(
    net: &mut HybridNet<'_>,
    tokens: Vec<Token<T>>,
    senders: &[NodeId],
    receivers: &[NodeId],
    rates: RoutingRates,
    seed: u64,
    phase: &str,
) -> Result<RoutedTokens<T>, HybridError> {
    let start_rounds = net.rounds();
    let n = net.n();
    let mut per_sender: Vec<u32> = vec![0; n];
    let mut per_receiver: Vec<u32> = vec![0; n];
    for t in &tokens {
        if t.label.s != t.label.r {
            per_sender[t.label.s.index()] += 1;
            per_receiver[t.label.r.index()] += 1;
        }
    }
    let k_s = per_sender.iter().copied().max().unwrap_or(0) as usize;
    let k_r = per_receiver.iter().copied().max().unwrap_or(0) as usize;
    if k_s == 0 {
        // Nothing to route globally (possibly self-addressed tokens only).
        let session = RoutingSession {
            senders: senders.to_vec(),
            receivers: receivers.to_vec(),
            hs: crate::helpers::HelperSets::trivial(senders, net.n()),
            hr: crate::helpers::HelperSets::trivial(receivers, net.n()),
            hash: KWiseHash::from_seed_words(vec![1], net.n() as u64),
            mu_s: 1,
            mu_r: 1,
        };
        return session.route(net, tokens, phase);
    }
    let session = RoutingSession::establish(net, senders, receivers, rates, k_s, k_r, seed, phase)?;
    let mut routed = session.route(net, tokens, phase)?;
    routed.rounds = net.rounds() - start_rounds;
    Ok(routed)
}

/// Sorts every receiver's deliveries by label — independent per receiver,
/// sharded across the round-engine worker budget.
fn finish<T: Send>(threads: usize, delivered: &mut [Vec<Token<T>>]) {
    par::map_shards_mut(threads, delivered, |_, shard| {
        for v in shard.iter_mut() {
            v.sort_by_key(|t| t.label);
        }
    });
}

/// One intermediate node's store of tokens awaiting their requests: labels
/// sorted ascending in one packed array, payloads parallel to them
/// (struct-of-arrays — no per-entry tuple padding).
struct IntermediateStore<T> {
    labels: Vec<TokenLabel>,
    payloads: Vec<Option<T>>,
}

/// One shard of the Algorithm 4 answer step: intermediates `start + i` look
/// up each requested label in their store and enqueue the response. On a
/// lossless channel a request always follows the token to the same
/// hash-chosen intermediate; if the token was lost en route (fault
/// injection), surface a structured error instead of corrupting the protocol.
/// A *found* label whose payload was already taken is a different story —
/// requests are never duplicated, not even by faults (loss only removes
/// messages), so that stays a hard protocol-bug panic.
fn answer_requests<T>(
    start: usize,
    stores: &mut [IntermediateStore<T>],
    resps: &mut [std::collections::VecDeque<Envelope<Token<T>>>],
    req_flat: &FlatInboxes<TokenLabel>,
) -> Result<(), HybridError> {
    for (i, (store, resp)) in stores.iter_mut().zip(resps.iter_mut()).enumerate() {
        let mid = start + i;
        for &(requester, lab) in req_flat.node(mid) {
            let idx = store.labels.binary_search(&lab).map_err(|_| {
                HybridError::InvariantViolation(format!(
                    "request from {requester} reached intermediate {mid} \
                         but the matching token never did (message lost?)"
                ))
            })?;
            let payload = store.payloads[idx].take().expect("token answered once");
            resp.push_back(Envelope::new(
                NodeId::new(mid),
                requester,
                Token { label: lab, payload },
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use hybrid_graph::generators::{erdos_renyi_connected, grid, path};
    use hybrid_graph::Graph;
    use hybrid_sim::HybridConfig;
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// Builds a random routing instance: `ns` senders, `nr` receivers, `per`
    /// tokens from each sender to random receivers.
    fn instance(
        g: &Graph,
        ns: usize,
        nr: usize,
        per: usize,
        seed: u64,
    ) -> (Vec<Token<u64>>, Vec<NodeId>, Vec<NodeId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes: Vec<NodeId> = g.nodes().collect();
        nodes.shuffle(&mut rng);
        let senders: Vec<NodeId> = nodes[..ns].to_vec();
        let receivers: Vec<NodeId> = nodes[ns..ns + nr].to_vec();
        let mut tokens = Vec::new();
        for &s in &senders {
            for i in 0..per {
                let r = receivers[rng.gen_range(0..nr)];
                tokens.push(Token::new(
                    s,
                    r,
                    (s.raw() << 8) + i as u32,
                    s.raw() as u64 * 1000 + i as u64,
                ));
            }
        }
        (tokens, senders, receivers)
    }

    fn verify_delivery(tokens: &[Token<u64>], routed: &RoutedTokens<u64>) {
        let mut expected: HashMap<NodeId, Vec<&Token<u64>>> = HashMap::new();
        for t in tokens {
            expected.entry(t.label.r).or_default().push(t);
        }
        for (r, exp) in expected {
            let got = routed.for_receiver(r);
            assert_eq!(got.len(), exp.len(), "receiver {r}");
            for t in exp {
                assert!(
                    got.iter().any(|g| g.label == t.label && g.payload == t.payload),
                    "token {:?} missing at {r}",
                    t.label
                );
            }
        }
        assert_eq!(routed.len(), tokens.len());
    }

    #[test]
    fn routes_small_instance_strict() {
        let g = path(60, 1).unwrap();
        let (tokens, s, r) = instance(&g, 6, 6, 3, 1);
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let routed = route_tokens(
            &mut net,
            tokens.clone(),
            &s,
            &r,
            RoutingRates { p_s: 0.1, p_r: 0.1 },
            42,
            "tr",
        )
        .unwrap();
        verify_delivery(&tokens, &routed);
        assert_eq!(routed.rounds, net.rounds());
    }

    #[test]
    fn routes_on_grid() {
        let g = grid(8, 8, 1).unwrap();
        let (tokens, s, r) = instance(&g, 10, 8, 4, 2);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let routed = route_tokens(
            &mut net,
            tokens.clone(),
            &s,
            &r,
            RoutingRates { p_s: 0.15, p_r: 0.12 },
            7,
            "tr",
        )
        .unwrap();
        verify_delivery(&tokens, &routed);
    }

    #[test]
    fn routes_heavy_instance_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi_connected(120, 0.05, 1, &mut rng).unwrap();
        let (tokens, s, r) = instance(&g, 20, 15, 12, 3);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let routed = route_tokens(
            &mut net,
            tokens.clone(),
            &s,
            &r,
            RoutingRates { p_s: 20.0 / 120.0, p_r: 15.0 / 120.0 },
            9,
            "tr",
        )
        .unwrap();
        verify_delivery(&tokens, &routed);
        assert!(routed.mu_s >= 1 && routed.mu_r >= 1);
    }

    #[test]
    fn self_addressed_tokens_are_free() {
        let g = path(10, 1).unwrap();
        let tokens = vec![Token::new(NodeId::new(3), NodeId::new(3), 0, 99u64)];
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let routed = route_tokens(
            &mut net,
            tokens,
            &[NodeId::new(3)],
            &[NodeId::new(3)],
            RoutingRates::dense(),
            1,
            "tr",
        )
        .unwrap();
        assert_eq!(net.rounds(), 0);
        assert_eq!(routed.for_receiver(NodeId::new(3)).len(), 1);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let g = path(10, 1).unwrap();
        let tokens = vec![
            Token::new(NodeId::new(0), NodeId::new(5), 1, 1u64),
            Token::new(NodeId::new(0), NodeId::new(5), 1, 2u64),
        ];
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let err = route_tokens(
            &mut net,
            tokens,
            &[NodeId::new(0)],
            &[NodeId::new(5)],
            RoutingRates::dense(),
            1,
            "tr",
        )
        .unwrap_err();
        assert!(matches!(err, HybridError::DuplicateTokenLabel { .. }));
    }

    #[test]
    fn empty_instance_is_free() {
        let g = path(10, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let routed = route_tokens::<u64>(
            &mut net,
            vec![],
            &[NodeId::new(0)],
            &[NodeId::new(1)],
            RoutingRates::dense(),
            1,
            "tr",
        )
        .unwrap();
        assert!(routed.is_empty());
        assert_eq!(net.rounds(), 0);
    }

    #[test]
    fn mu_formula() {
        // µ = min(√k, 1/p), rebalanced by ⌈log₂ n⌉ and clamped to [1, µ].
        assert_eq!(mu_for(100, 0.01, 4), 5); // min(10, 100) / 2
        assert_eq!(mu_for(100, 0.5, 4), 1); // min(10, 2) / 2, clamped up
        assert_eq!(mu_for(0, 0.5, 1024), 1); // clamped
        assert_eq!(mu_for(10_000, 1.0, 16), 1); // dense sets: no helpers
        assert_eq!(mu_for(1 << 20, 0.0001, 4), 512); // min(1024, 10⁴) / 2
    }

    #[test]
    fn session_reuse_is_cheaper_than_reestablish() {
        // The CLIQUE simulation's access pattern: many batches between the
        // same populations. Reusing the session must skip the setup cost.
        let mut rng = StdRng::seed_from_u64(8);
        let g = erdos_renyi_connected(120, 0.05, 1, &mut rng).unwrap();
        let (tokens, s, r) = instance(&g, 10, 10, 8, 4);
        let rates = RoutingRates { p_s: 10.0 / 120.0, p_r: 10.0 / 120.0 };

        let mut net = HybridNet::new(&g, HybridConfig::default());
        let session = RoutingSession::establish(&mut net, &s, &r, rates, 8, 10, 3, "tr").unwrap();
        let setup = net.rounds();
        let first = session.route(&mut net, tokens.clone(), "tr").unwrap();
        verify_delivery(&tokens, &first);
        let second = session.route(&mut net, tokens.clone(), "tr").unwrap();
        verify_delivery(&tokens, &second);
        // The second batch pays no setup: strictly less than setup + route.
        assert!(second.rounds <= first.rounds);
        assert!(net.rounds() == setup + first.rounds + second.rounds);
    }

    #[test]
    fn session_with_explicit_budgets() {
        let g = grid(10, 10, 1).unwrap();
        let (tokens, s, r) = instance(&g, 8, 8, 5, 9);
        for mu in [1usize, 2, 5] {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let session =
                RoutingSession::establish_with_budgets(&mut net, &s, &r, mu, mu, 11, "tr").unwrap();
            assert_eq!(session.budgets(), (mu, mu));
            let routed = session.route(&mut net, tokens.clone(), "tr").unwrap();
            verify_delivery(&tokens, &routed);
        }
    }

    #[test]
    fn congestion_stays_logarithmic() {
        // Lemma D.2 / Lemma 2.3: max receive load O(log n) — verified by the
        // strict config (which fails the run otherwise) plus an explicit check.
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_connected(150, 0.04, 1, &mut rng).unwrap();
        let (tokens, s, r) = instance(&g, 12, 12, 6, 6);
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        route_tokens(&mut net, tokens, &s, &r, RoutingRates { p_s: 0.08, p_r: 0.08 }, 13, "tr")
            .unwrap();
        assert!(net.metrics().max_recv_load <= net.recv_cap());
    }
}
