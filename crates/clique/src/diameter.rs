//! CLIQUE diameter algorithms (plugins for Theorem 5.1).

use hybrid_graph::apsp::weighted_diameter;
use hybrid_graph::minplus::par_row_map;
use hybrid_graph::{Distance, Graph, NodeId, INFINITY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::net::{CliqueError, CliqueMsg, CliqueNet};
use crate::semiring::SemiringApsp;
use crate::traits::{Beta, CliqueDiameterAlgorithm};

/// Exact weighted diameter by running [`SemiringApsp`] and max-aggregating the
/// per-node eccentricities in one extra clique round (`α = 1`, `β = 0`,
/// `δ = 1/3`).
#[derive(Debug, Clone, Default)]
pub struct ExactDiameter;

impl ExactDiameter {
    /// Creates the algorithm.
    pub fn new() -> Self {
        ExactDiameter
    }
}

impl CliqueDiameterAlgorithm for ExactDiameter {
    fn name(&self) -> &'static str {
        "exact-diameter-via-semiring-apsp"
    }

    fn delta(&self) -> f64 {
        1.0 / 3.0
    }

    fn eta(&self) -> f64 {
        1.0
    }

    fn alpha(&self) -> f64 {
        1.0
    }

    fn beta(&self) -> Beta {
        Beta::Zero
    }

    fn run(&self, net: &mut CliqueNet, g: &Graph) -> Result<Distance, CliqueError> {
        let d = SemiringApsp::new().apsp(net, g)?;
        // Each node v computes its eccentricity from its row and sends it to node
        // 0, which takes the max and (conceptually) broadcasts — two clique
        // rounds, simulated explicitly. The per-node row reduction is
        // assembled through the min-plus module's parallel row driver.
        let n = g.len();
        let eccs: Vec<Distance> =
            par_row_map(d.as_flat(), n, n, |_, row| row.iter().copied().max().unwrap_or(0));
        let mut batch = Vec::new();
        for v in g.nodes() {
            if v.index() != 0 {
                batch.push(CliqueMsg::new(v, NodeId::new(0), eccs[v.index()]));
            }
        }
        let inboxes = net.route(batch)?;
        let mut diam = eccs[0];
        for &(_, e) in &inboxes[0] {
            diam = diam.max(e);
        }
        net.broadcast(NodeId::new(0), diam)?;
        Ok(diam)
    }
}

/// Declared wrapper for the `(3/2 + ε, W)`-approximate diameter algorithm of \[7\]
/// (`δ = 0`, `η = 1/ε`) — used by Corollary 5.2. See
/// [`crate::declared`] for the substitution rationale.
#[derive(Debug, Clone)]
pub struct DeclaredDiameter32 {
    eps: f64,
    seed: u64,
}

impl DeclaredDiameter32 {
    /// Creates the wrapper with approximation slack `ε > 0`.
    pub fn new(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0);
        DeclaredDiameter32 { eps, seed }
    }
}

impl CliqueDiameterAlgorithm for DeclaredDiameter32 {
    fn name(&self) -> &'static str {
        "CKKL19-diameter-3/2"
    }

    fn delta(&self) -> f64 {
        0.0
    }

    fn eta(&self) -> f64 {
        (1.0 / self.eps).max(1.0)
    }

    fn alpha(&self) -> f64 {
        1.5 + self.eps
    }

    fn beta(&self) -> Beta {
        Beta::MaxWeight(1.0)
    }

    fn run(&self, net: &mut CliqueNet, g: &Graph) -> Result<Distance, CliqueError> {
        net.charge_rounds(((self.eta()).ceil() as u64).max(1));
        let d = weighted_diameter(g);
        if d == INFINITY {
            return Ok(INFINITY);
        }
        let hi = self.alpha() * d as f64 + g.max_weight() as f64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let v = rng.gen_range(d as f64..=hi);
        Ok((v.floor() as Distance).max(d))
    }
}

/// Declared wrapper for the `(1 + ε)`-approximate diameter via the algebraic
/// APSP of \[8\] (`δ = 0.15715`, `η = 1/ε`) — used by Corollary 5.3.
#[derive(Debug, Clone)]
pub struct DeclaredDiameterAlgebraic {
    eps: f64,
    seed: u64,
}

impl DeclaredDiameterAlgebraic {
    /// Creates the wrapper with approximation slack `ε > 0`.
    pub fn new(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0);
        DeclaredDiameterAlgebraic { eps, seed }
    }
}

impl CliqueDiameterAlgorithm for DeclaredDiameterAlgebraic {
    fn name(&self) -> &'static str {
        "CKKLPS19-diameter-1+eps"
    }

    fn delta(&self) -> f64 {
        0.15715
    }

    fn eta(&self) -> f64 {
        (1.0 / self.eps).max(1.0)
    }

    fn alpha(&self) -> f64 {
        1.0 + self.eps
    }

    fn beta(&self) -> Beta {
        Beta::Zero
    }

    fn run(&self, net: &mut CliqueNet, g: &Graph) -> Result<Distance, CliqueError> {
        let n = net.len();
        let rounds = ((self.eta() * (n as f64).powf(self.delta())).ceil() as u64).max(1);
        net.charge_rounds(rounds);
        let d = weighted_diameter(g);
        if d == INFINITY {
            return Ok(INFINITY);
        }
        let hi = self.alpha() * d as f64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let v = rng.gen_range(d as f64..=hi);
        Ok((v.floor() as Distance).max(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{cycle, erdos_renyi_connected};
    use rand::rngs::StdRng;

    #[test]
    fn exact_diameter_matches_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [12, 30] {
            let g = erdos_renyi_connected(n, 0.15, 5, &mut rng).unwrap();
            let mut net = CliqueNet::new(n);
            let d = ExactDiameter::new().run(&mut net, &g).unwrap();
            assert_eq!(d, weighted_diameter(&g));
        }
    }

    #[test]
    fn exact_diameter_on_cycle() {
        let g = cycle(10, 4).unwrap();
        let mut net = CliqueNet::new(10);
        assert_eq!(ExactDiameter::new().run(&mut net, &g).unwrap(), 20);
    }

    #[test]
    fn declared_32_respects_contract() {
        let g = cycle(14, 3).unwrap();
        let exact = weighted_diameter(&g);
        for seed in 0..10 {
            let alg = DeclaredDiameter32::new(0.2, seed);
            let mut net = CliqueNet::new(14);
            let d = alg.run(&mut net, &g).unwrap();
            assert!(d >= exact);
            assert!(d as f64 <= (1.5 + 0.2) * exact as f64 + g.max_weight() as f64 + 1.0);
        }
    }

    #[test]
    fn declared_algebraic_respects_contract() {
        let g = cycle(14, 3).unwrap();
        let exact = weighted_diameter(&g);
        for seed in 0..10 {
            let alg = DeclaredDiameterAlgebraic::new(0.1, seed);
            let mut net = CliqueNet::new(14);
            let d = alg.run(&mut net, &g).unwrap();
            assert!(d >= exact);
            assert!(d as f64 <= 1.1 * exact as f64 + 1.0);
        }
    }

    #[test]
    fn declared_rounds_charged() {
        let g = cycle(20, 1).unwrap();
        let alg = DeclaredDiameter32::new(0.1, 0);
        let mut net = CliqueNet::new(20);
        alg.run(&mut net, &g).unwrap();
        assert_eq!(net.rounds(), 10); // η = 1/ε = 10, δ = 0
    }

    #[test]
    fn handles_disconnected() {
        let mut b = hybrid_graph::GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 1).unwrap();
        let g = b.build().unwrap();
        let mut net = CliqueNet::new(4);
        assert_eq!(DeclaredDiameter32::new(0.5, 1).run(&mut net, &g).unwrap(), INFINITY);
    }
}
