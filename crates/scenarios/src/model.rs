//! The declarative scenario model:
//! `Scenario = GraphFamily × WeightModel × FaultPlan × AlgorithmSuite × Seed`.
//!
//! Every field is plain const-constructible data, so the whole registry lives
//! in a `static` table and a scenario is fully described by `(name, seed)` —
//! the reproducibility contract the runner and the golden verification layer
//! build on.

use hybrid_core::solver::{
    ApspVariant, DiameterCorollary, KsspCorollary, Query, QueryError, SourceSet, SsspVariant,
};
use hybrid_graph::generators as gen;
use hybrid_graph::{Distance, Graph, NodeId};
use hybrid_sim::{derive_seed, Crash, HybridConfig, HybridNet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The topology family a scenario draws its local graph from. Families are
/// parametrized by shape, not size: the node count `n` is chosen at run time
/// (tiny for smoke verification, large for benchmarks) and every family
/// scales its internal knobs (radius, cluster count, …) with `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphFamily {
    /// Erdős–Rényi `G(n, avg_deg / n)`, patched to connectivity.
    ErdosRenyi {
        /// Expected average degree.
        avg_deg: f64,
    },
    /// `⌈√n⌉ × ⌈√n⌉` square grid (`n` is rounded up to a square).
    SquareGrid,
    /// `rows × (n / rows)` thin grid — the large-hop-diameter fabric.
    ThinGrid {
        /// Number of (short) rows.
        rows: usize,
    },
    /// Cycle on `n` nodes (`D = n / 2`, the diameter worst case).
    Cycle,
    /// Random geometric graph in the unit square; the radius is chosen so the
    /// expected degree is `avg_deg` (`πr²n = avg_deg`).
    RandomGeometric {
        /// Expected average degree.
        avg_deg: f64,
    },
    /// Barabási–Albert preferential attachment (power-law hubs).
    BarabasiAlbert {
        /// Edges each arriving node attaches with.
        attach: usize,
    },
    /// Watts–Strogatz small world.
    WattsStrogatz {
        /// Ring-lattice degree (even).
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// Unit path plus a heavy hub: hop diameter 2, `SPD = n - 2`
    /// (the Theorem 1.3 separation family).
    HeavyHubPath,
    /// Clustered "enterprise WAN": dense local clusters plus a sparse heavy
    /// backbone.
    Clustered {
        /// Number of clusters (`n / clusters` nodes each).
        clusters: usize,
        /// Intra-cluster Erdős–Rényi edge probability.
        intra_p: f64,
        /// Backbone link weight.
        link_w: Distance,
        /// Extra random cross-cluster links.
        extra_links: usize,
    },
}

impl GraphFamily {
    /// Short label for tables and JSON records.
    pub fn label(&self) -> &'static str {
        match self {
            GraphFamily::ErdosRenyi { .. } => "erdos-renyi",
            GraphFamily::SquareGrid => "square-grid",
            GraphFamily::ThinGrid { .. } => "thin-grid",
            GraphFamily::Cycle => "cycle",
            GraphFamily::RandomGeometric { .. } => "geometric",
            GraphFamily::BarabasiAlbert { .. } => "barabasi-albert",
            GraphFamily::WattsStrogatz { .. } => "watts-strogatz",
            GraphFamily::HeavyHubPath => "heavy-hub-path",
            GraphFamily::Clustered { .. } => "clustered-wan",
        }
    }

    /// Builds the graph at size ≈ `n` (grid-like families round up) with the
    /// given weight model, deterministically from `seed`.
    ///
    /// The Erdős–Rényi family seeds its RNG with `seed` directly (it goes
    /// through [`crate::workloads::er`], matching the instances the perf
    /// trajectory in `BENCH_apsp.json` has recorded since PR 1); the other
    /// random families use a salted sub-seed.
    pub fn build(&self, n: usize, weights: WeightModel, seed: u64) -> Graph {
        let max_w = weights.max_weight();
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x0067_7261_7068)); // "graph"
        match *self {
            GraphFamily::ErdosRenyi { avg_deg } => {
                return crate::workloads::er(n, avg_deg, max_w, seed)
            }
            GraphFamily::SquareGrid => {
                let side = (n as f64).sqrt().ceil() as usize;
                gen::grid(side, side, weights.uniform_or(1))
            }
            GraphFamily::ThinGrid { rows } => {
                gen::grid(rows, (n / rows).max(2), weights.uniform_or(1))
            }
            GraphFamily::Cycle => gen::cycle(n, weights.uniform_or(1)),
            GraphFamily::RandomGeometric { avg_deg } => {
                let radius = (avg_deg / (std::f64::consts::PI * n as f64)).sqrt().min(1.0);
                gen::random_geometric_connected(n, radius, max_w, &mut rng)
            }
            GraphFamily::BarabasiAlbert { attach } => {
                gen::barabasi_albert(n, attach.min(n - 1), max_w, &mut rng)
            }
            GraphFamily::WattsStrogatz { k, beta } => {
                gen::watts_strogatz(n, k.min((n - 1) & !1), beta, max_w, &mut rng)
            }
            GraphFamily::HeavyHubPath => gen::path_with_heavy_hub(n.max(3), 2 * n as Distance),
            GraphFamily::Clustered { clusters, intra_p, link_w, extra_links } => {
                let size = (n / clusters).max(2);
                gen::clustered_network(
                    clusters,
                    size,
                    intra_p,
                    max_w,
                    link_w,
                    extra_links,
                    &mut rng,
                )
            }
        }
        .expect("scenario graph families generate valid graphs")
    }
}

/// Edge-weight model. Families with intrinsic weights (heavy hub, the WAN
/// backbone) combine it with their own structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// All edges weight 1 (unweighted shortest paths).
    Unit,
    /// Weights uniform in `[1, max]`.
    Uniform {
        /// Largest edge weight.
        max: Distance,
    },
}

impl WeightModel {
    /// The largest weight this model can produce.
    pub fn max_weight(&self) -> Distance {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::Uniform { max } => max,
        }
    }

    /// For families with one global weight: `max` for uniform models, `unit`
    /// otherwise.
    fn uniform_or(&self, unit: Distance) -> Distance {
        match *self {
            WeightModel::Unit => unit,
            WeightModel::Uniform { max } => max,
        }
    }

    /// Short label for tables and JSON records.
    pub fn label(&self) -> &'static str {
        match self {
            WeightModel::Unit => "unit",
            WeightModel::Uniform { .. } => "uniform",
        }
    }
}

/// The fault regime a scenario runs under. `Degraded` reshapes the
/// [`HybridConfig`] caps (slower but lossless); `DropGlobal` / `CrashNodes`
/// install a [`hybrid_sim::FaultPlan`] in the simulator's exchange hooks
/// (lossy — verified under the no-silent-corruption contract, see
/// [`crate::verify`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlan {
    /// Healthy network.
    None,
    /// Starved global bandwidth under `OverflowPolicy::Stretch`: every message
    /// arrives, the round clock pays.
    Degraded {
        /// Send-cap multiplier (fraction of the NCC budget).
        send_factor: f64,
        /// Receive-cap multiplier.
        recv_factor: f64,
    },
    /// Each global message is lost independently with probability `prob`
    /// (deterministic stream per scenario seed).
    DropGlobal {
        /// Per-message loss probability in `[0, 1)`.
        prob: f64,
    },
    /// `count` pseudo-random nodes (never node 0, which the suites use as
    /// source) crash once `at_round` rounds have elapsed.
    CrashNodes {
        /// How many nodes crash.
        count: usize,
        /// Round-clock value at which they fall silent.
        at_round: u64,
    },
    /// Combined chaos: per-message loss *and* a mid-run crash storm in one
    /// plan (the `chaos-*` family's hardest regime).
    DropAndCrash {
        /// Per-message loss probability in `[0, 1)`.
        prob: f64,
        /// How many nodes crash (never node 0).
        count: usize,
        /// Round-clock value at which they fall silent.
        at_round: u64,
    },
}

impl FaultPlan {
    /// Short label for tables and JSON records.
    pub fn label(&self) -> &'static str {
        match self {
            FaultPlan::None => "none",
            FaultPlan::Degraded { .. } => "degraded-caps",
            FaultPlan::DropGlobal { .. } => "drop-global",
            FaultPlan::CrashNodes { .. } => "crash-nodes",
            FaultPlan::DropAndCrash { .. } => "drop+crash",
        }
    }

    /// `true` if the plan can lose messages (and verification must use the
    /// lossy contract instead of exactness).
    pub fn is_lossy(&self) -> bool {
        matches!(
            self,
            FaultPlan::DropGlobal { .. }
                | FaultPlan::CrashNodes { .. }
                | FaultPlan::DropAndCrash { .. }
        )
    }

    /// The simulator configuration this plan implies.
    pub fn config(&self) -> HybridConfig {
        match *self {
            FaultPlan::Degraded { send_factor, recv_factor } => {
                HybridConfig::degraded(send_factor, recv_factor)
            }
            _ => HybridConfig::default(),
        }
    }

    /// The simulator-level [`hybrid_sim::FaultPlan`] this plan implies for a
    /// network of `n` nodes (`None` for lossless regimes) — shared by
    /// [`FaultPlan::install`] and the session path of the runner.
    pub fn sim_plan(&self, n: usize, seed: u64) -> Option<hybrid_sim::FaultPlan> {
        match *self {
            FaultPlan::None | FaultPlan::Degraded { .. } => None,
            FaultPlan::DropGlobal { prob } => {
                Some(hybrid_sim::FaultPlan::drops(prob, derive_seed(seed, 0xFA17)))
            }
            FaultPlan::CrashNodes { count, at_round } => {
                Some(hybrid_sim::FaultPlan::node_crashes(pick_crashes(n, count, at_round, seed)))
            }
            FaultPlan::DropAndCrash { prob, count, at_round } => Some(hybrid_sim::FaultPlan {
                drop_prob: prob,
                corrupt_prob: 0.0,
                crashes: pick_crashes(n, count, at_round, seed),
                seed: derive_seed(seed, 0xFA17),
            }),
        }
    }

    /// Installs the simulator-level part of the plan on `net`.
    pub fn install(&self, net: &mut HybridNet<'_>, seed: u64) {
        if let Some(plan) = self.sim_plan(net.n(), seed) {
            net.inject_faults(&plan).expect("registry fault plans are valid");
        }
    }
}

/// Picks `count` distinct pseudo-random crash victims for an `n`-node network
/// — never node 0: the suites use it as the source, and a dead source makes
/// the instance vacuous. (A live node 0 also guarantees the survivor set is
/// non-empty, so the schedule always passes
/// [`hybrid_sim::FaultPlan::validate_for`].)
fn pick_crashes(n: usize, count: usize, at_round: u64, seed: u64) -> Vec<Crash> {
    let mut crashes = Vec::with_capacity(count);
    let mut salt = 0u64;
    while crashes.len() < count.min(n.saturating_sub(1)) {
        let v = 1 + (derive_seed(seed, 0xC0A5 + salt) as usize) % (n - 1);
        salt += 1;
        if !crashes.iter().any(|c: &Crash| c.node == NodeId::new(v)) {
            crashes.push(Crash { node: NodeId::new(v), at_round });
        }
    }
    crashes
}

/// Which distributed algorithm(s) the scenario exercises, with the golden
/// contract each one is verified against.
///
/// This is a thin, const-constructible wrapper over the solver's typed
/// [`Query`]: corollaries are the real [`KsspCorollary`] /
/// [`DiameterCorollary`] enums (an invalid number is unrepresentable — use
/// [`AlgorithmSuite::kssp`] / [`AlgorithmSuite::diameter`] at numeric
/// deserialization boundaries), and [`AlgorithmSuite::query`] is the bridge
/// the runner feeds to [`hybrid_core::solver::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgorithmSuite {
    /// Exact APSP, Theorem 1.1 (`Õ(√n)` rounds) — verified pairwise-exact.
    Apsp {
        /// Skeleton scaling constant ξ (Lemma C.1).
        xi: f64,
    },
    /// Exact APSP, SODA'20 baseline (`Õ(n^{2/3})`) — verified pairwise-exact.
    ApspSoda20 {
        /// Skeleton scaling constant ξ.
        xi: f64,
    },
    /// Exact SSSP from node 0, Theorem 1.3 (`Õ(n^{2/5})`) — verified exact.
    Sssp {
        /// Skeleton scaling constant ξ.
        xi: f64,
    },
    /// k-SSP (Theorem 1.2 / Corollaries 4.6–4.8) — verified within the run's
    /// own guaranteed approximation factor, never underestimating.
    Kssp {
        /// Which corollary.
        cor: KsspCorollary,
        /// Source count (`k` seed-derived pseudo-random nodes).
        k: usize,
        /// Approximation parameter ε.
        eps: f64,
        /// Skeleton scaling constant ξ.
        xi: f64,
    },
    /// Diameter approximation (Corollaries 5.2 / 5.3) — verified inside
    /// `[D, factor · D]`.
    Diameter {
        /// Which corollary.
        cor: DiameterCorollary,
        /// Approximation parameter ε.
        eps: f64,
        /// Skeleton scaling constant ξ.
        xi: f64,
    },
}

impl AlgorithmSuite {
    /// Builds a k-SSP suite from a *numeric* corollary (deserialization
    /// boundary): an unknown number is a structured [`QueryError`], never a
    /// silent fallback onto some default corollary.
    pub fn kssp(cor: u8, k: usize, eps: f64, xi: f64) -> Result<Self, QueryError> {
        Ok(AlgorithmSuite::Kssp { cor: KsspCorollary::try_from(cor)?, k, eps, xi })
    }

    /// Builds a diameter suite from a *numeric* corollary (deserialization
    /// boundary); unknown numbers are structured errors.
    pub fn diameter(cor: u8, eps: f64, xi: f64) -> Result<Self, QueryError> {
        Ok(AlgorithmSuite::Diameter { cor: DiameterCorollary::try_from(cor)?, eps, xi })
    }

    /// The typed solver [`Query`] this suite describes. SSSP suites query from
    /// node 0; k-SSP suites use `k` seed-derived random sources — both exactly
    /// as the runner has always executed them. Parameter validation happens in
    /// [`hybrid_core::solver::solve`].
    pub fn query(&self) -> Query {
        match *self {
            AlgorithmSuite::Apsp { xi } => Query::Apsp { variant: ApspVariant::Thm11, xi },
            AlgorithmSuite::ApspSoda20 { xi } => Query::Apsp { variant: ApspVariant::Soda20, xi },
            AlgorithmSuite::Sssp { xi } => {
                Query::Sssp { variant: SsspVariant::Thm13, source: NodeId::new(0), xi }
            }
            AlgorithmSuite::Kssp { cor, k, eps, xi } => {
                Query::Kssp { cor, sources: SourceSet::Random { k }, eps, xi }
            }
            AlgorithmSuite::Diameter { cor, eps, xi } => Query::Diameter { cor, eps, xi },
        }
    }

    /// Short label for tables and JSON records — the canonical query label.
    pub fn label(&self) -> &'static str {
        self.query().label()
    }

    /// The skeleton constant ξ this suite runs under — what a serving
    /// [`hybrid_core::session::Session`] over the scenario's graph must be
    /// pinned to.
    pub fn xi(&self) -> f64 {
        match *self {
            AlgorithmSuite::Apsp { xi }
            | AlgorithmSuite::ApspSoda20 { xi }
            | AlgorithmSuite::Sssp { xi }
            | AlgorithmSuite::Kssp { xi, .. }
            | AlgorithmSuite::Diameter { xi, .. } => xi,
        }
    }
}

/// A deterministic churn regime for `churn-*` scenarios: the runner replays
/// `steps` rounds of *query → verify → delta*, with every delta drawn from
/// SplitMix64 streams of the scenario seed (see [`crate::churn`]) and every
/// query verified bit-identical to a cold solve on the graph version live at
/// that point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Update/query interleaving steps after the initial epoch-0 query.
    pub steps: usize,
    /// Delta operations attempted per update batch.
    pub ops_per_step: usize,
}

/// One named, reproducible workload: everything the runner needs, as data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Unique registry name (e.g. `"e2-er"`).
    pub name: &'static str,
    /// Lookup tags (e.g. `"apsp"`, `"faulty"`, `"sparse"`).
    pub tags: &'static [&'static str],
    /// Topology family.
    pub family: GraphFamily,
    /// Edge-weight model.
    pub weights: WeightModel,
    /// Fault regime.
    pub faults: FaultPlan,
    /// Algorithm(s) under test and their verification contract.
    pub suite: AlgorithmSuite,
    /// Root seed; every random choice (graph, algorithm, faults) derives from
    /// it, so `(scenario, seed)` fully determines a run.
    pub seed: u64,
    /// Node count used by full-scale (non-smoke) runs.
    pub default_n: usize,
    /// Churn regime: `Some` makes the runner replay the update/query
    /// interleaving of [`ChurnPlan`] through epoch-versioned sessions instead
    /// of a single static solve.
    pub churn: Option<ChurnPlan>,
}

impl Scenario {
    /// Builds the scenario's local graph at size ≈ `n`.
    pub fn graph(&self, n: usize) -> Graph {
        self.family.build(n, self.weights, self.seed)
    }

    /// Creates the simulated network for `g`: the fault plan's configuration,
    /// with its simulator-level hooks installed.
    pub fn net<'g>(&self, g: &'g Graph) -> HybridNet<'g> {
        let mut net = HybridNet::new(g, self.faults.config());
        self.faults.install(&mut net, self.seed);
        net
    }

    /// `true` if the scenario carries `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(&tag)
    }

    /// The verification contract this scenario is held to: `chaos-*`
    /// workloads must recover (aborting is a failure), other lossy plans get
    /// the tolerance contract, healthy plans are strict.
    pub fn contract(&self) -> crate::verify::Contract {
        if self.has_tag("chaos") {
            crate::verify::Contract::MustRecover
        } else if self.faults.is_lossy() {
            crate::verify::Contract::Lossy
        } else {
            crate::verify::Contract::Strict
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_connected_graphs_at_smoke_size() {
        let families = [
            GraphFamily::ErdosRenyi { avg_deg: 8.0 },
            GraphFamily::SquareGrid,
            GraphFamily::ThinGrid { rows: 4 },
            GraphFamily::Cycle,
            GraphFamily::RandomGeometric { avg_deg: 9.0 },
            GraphFamily::BarabasiAlbert { attach: 3 },
            GraphFamily::WattsStrogatz { k: 4, beta: 0.2 },
            GraphFamily::HeavyHubPath,
            GraphFamily::Clustered { clusters: 4, intra_p: 0.4, link_w: 16, extra_links: 2 },
        ];
        for f in families {
            for weights in [WeightModel::Unit, WeightModel::Uniform { max: 5 }] {
                let g = f.build(48, weights, 7);
                assert!(g.is_connected(), "{} must be connected", f.label());
                assert!(g.len() >= 40, "{} shrank too far: {}", f.label(), g.len());
            }
        }
    }

    #[test]
    fn er_family_preserves_the_recorded_bench_instance() {
        // The perf trajectory (BENCH_apsp.json) has recorded `er(n, 12, 4, 3)`
        // instances since PR 1; the registry's `e2-er` must keep producing
        // bit-identical graphs or wall-clock numbers stop being comparable.
        let f = GraphFamily::ErdosRenyi { avg_deg: 12.0 };
        let a = f.build(100, WeightModel::Uniform { max: 4 }, 3);
        let b = crate::workloads::er(100, 12.0, 4, 3);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn graph_builds_are_deterministic() {
        let f = GraphFamily::ErdosRenyi { avg_deg: 10.0 };
        let a = f.build(64, WeightModel::Uniform { max: 4 }, 3);
        let b = f.build(64, WeightModel::Uniform { max: 4 }, 3);
        assert_eq!(a.edges(), b.edges());
        let c = f.build(64, WeightModel::Uniform { max: 4 }, 4);
        assert_ne!(a.edges(), c.edges(), "different seed, different graph");
    }

    #[test]
    fn numeric_corollaries_deserialize_or_error_structurally() {
        // The old failure mode: `cor: 49` silently ran Corollary 4.8. Now a
        // bad number is a structured error at the deserialization boundary,
        // and a good one round-trips into the typed suite.
        let ok = AlgorithmSuite::kssp(47, 8, 0.5, 1.5).unwrap();
        assert_eq!(ok.label(), "kssp-cor47");
        assert_eq!(
            AlgorithmSuite::kssp(49, 8, 0.5, 1.5),
            Err(QueryError::UnknownKsspCorollary { cor: 49 })
        );
        assert_eq!(AlgorithmSuite::diameter(53, 0.5, 1.2).unwrap().label(), "diameter-cor53");
        assert_eq!(
            AlgorithmSuite::diameter(54, 0.5, 1.2),
            Err(QueryError::UnknownDiameterCorollary { cor: 54 })
        );
    }

    #[test]
    fn suites_bridge_to_canonical_queries() {
        let suite = AlgorithmSuite::Kssp { cor: KsspCorollary::Cor46, k: 3, eps: 0.5, xi: 1.5 };
        match suite.query() {
            Query::Kssp {
                cor: KsspCorollary::Cor46, sources: SourceSet::Random { k: 3 }, ..
            } => {}
            other => panic!("unexpected query {other:?}"),
        }
        assert_eq!(AlgorithmSuite::Sssp { xi: 2.0 }.label(), "sssp-thm13");
        match (AlgorithmSuite::Sssp { xi: 2.0 }).query() {
            Query::Sssp { source, .. } => assert_eq!(source, NodeId::new(0)),
            other => panic!("unexpected query {other:?}"),
        }
    }

    #[test]
    fn fault_plan_configs() {
        assert_eq!(FaultPlan::None.config(), HybridConfig::default());
        let cfg = FaultPlan::Degraded { send_factor: 0.25, recv_factor: 1.0 }.config();
        assert_eq!(cfg.send_cap_factor, 0.25);
        assert!(!FaultPlan::Degraded { send_factor: 0.25, recv_factor: 1.0 }.is_lossy());
        assert!(FaultPlan::DropGlobal { prob: 0.05 }.is_lossy());
        assert!(FaultPlan::CrashNodes { count: 2, at_round: 10 }.is_lossy());
    }

    #[test]
    fn drop_and_crash_combines_both_fault_kinds() {
        let plan = FaultPlan::DropAndCrash { prob: 0.3, count: 3, at_round: 20 };
        assert!(plan.is_lossy());
        assert_eq!(plan.label(), "drop+crash");
        assert_eq!(plan.config(), HybridConfig::default());
        let sim = plan.sim_plan(48, 9).unwrap();
        assert_eq!(sim.drop_prob, 0.3);
        assert_eq!(sim.crashes.len(), 3);
        assert!(sim.crashes.iter().all(|c| c.node.index() != 0), "node 0 never crashes");
        assert!(sim.validate_for(48).is_ok());
        // The drop stream matches a pure-drop plan of the same seed, and the
        // crash picks match a pure-crash plan: the combined plan changes
        // nothing about either stream's derivation.
        let drops = FaultPlan::DropGlobal { prob: 0.3 }.sim_plan(48, 9).unwrap();
        assert_eq!(sim.seed, drops.seed);
        let crashes = FaultPlan::CrashNodes { count: 3, at_round: 20 }.sim_plan(48, 9).unwrap();
        assert_eq!(sim.crashes, crashes.crashes);
    }

    #[test]
    fn contracts_derive_from_tags_and_plans() {
        use crate::verify::Contract;
        let mut sc = Scenario {
            name: "t",
            tags: &[],
            family: GraphFamily::Cycle,
            weights: WeightModel::Unit,
            faults: FaultPlan::None,
            suite: AlgorithmSuite::Apsp { xi: 1.5 },
            seed: 1,
            default_n: 32,
            churn: None,
        };
        assert_eq!(sc.contract(), Contract::Strict);
        sc.faults = FaultPlan::DropGlobal { prob: 0.1 };
        assert_eq!(sc.contract(), Contract::Lossy);
        sc.tags = &["chaos", "faulty"];
        assert_eq!(sc.contract(), Contract::MustRecover);
    }

    #[test]
    fn crash_plan_never_kills_the_source() {
        let f = GraphFamily::Cycle;
        let g = f.build(32, WeightModel::Unit, 1);
        let sc = Scenario {
            name: "t",
            tags: &[],
            family: f,
            weights: WeightModel::Unit,
            faults: FaultPlan::CrashNodes { count: 31, at_round: 0 },
            suite: AlgorithmSuite::Sssp { xi: 1.5 },
            seed: 5,
            default_n: 32,
            churn: None,
        };
        let mut net = sc.net(&g);
        // Node 0 still talks: everything it sends to itself survives.
        let inboxes = net
            .exchange("t", vec![hybrid_sim::Envelope::new(NodeId::new(0), NodeId::new(0), 1u8)])
            .unwrap();
        assert_eq!(inboxes[0].len(), 1);
    }
}
