//! Topology deltas: validated, canonicalizing edge mutations.
//!
//! The HYBRID model of the paper assumes a frozen topology for the duration of
//! one execution, but a long-lived serving stack must survive topology *churn*
//! between executions. This module makes churn a first-class, validated event:
//! a [`DeltaBatch`] of [`GraphDelta`] operations is applied atomically through
//! [`Graph::apply_delta`], which either returns a new canonical [`Graph`] or a
//! structured [`DeltaError`] — never a panic and never a partially applied
//! batch.
//!
//! # Canonical form
//!
//! [`Graph::apply_delta`] rebuilds the post-delta graph from its edge set in
//! ascending `(u, v)` order. This makes the result a pure function of the
//! final edge *set*: any delta sequence reaching the same edges — in any
//! order, through any intermediate states, in one batch or many — produces a
//! bit-identical CSR, equal to a from-scratch [`GraphBuilder`] construction of
//! the sorted final edge list (the canonicalization guarantee, pinned by a
//! property test). Downstream layers lean on this: epoch fingerprints hash
//! the ordered edge list, and incremental re-preparation must be bit-identical
//! to a cold re-prepare on the post-delta graph.

use std::fmt;

use crate::dist::{Distance, INFINITY};
use crate::graph::{Edge, Graph, GraphBuilder};
use crate::ids::NodeId;

/// One edge mutation of a [`DeltaBatch`]. Endpoints are unordered (the graph
/// is undirected); every operation validates against the graph state left by
/// the operations before it in the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphDelta {
    /// Insert the (absent) undirected edge `{u, v}` with weight `w`.
    AddEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Weight in `[1, INFINITY)`.
        w: Distance,
    },
    /// Remove the (present) undirected edge `{u, v}`.
    RemoveEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Change the weight of the (present) undirected edge `{u, v}` to `w`.
    Reweight {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// New weight in `[1, INFINITY)`.
        w: Distance,
    },
}

impl GraphDelta {
    /// The two endpoints the operation touches.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            GraphDelta::AddEdge { u, v, .. }
            | GraphDelta::RemoveEdge { u, v }
            | GraphDelta::Reweight { u, v, .. } => (u, v),
        }
    }
}

impl fmt::Display for GraphDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphDelta::AddEdge { u, v, w } => write!(f, "+{}-{}:{}", u.index(), v.index(), w),
            GraphDelta::RemoveEdge { u, v } => write!(f, "-{}-{}", u.index(), v.index()),
            GraphDelta::Reweight { u, v, w } => write!(f, "~{}-{}:{}", u.index(), v.index(), w),
        }
    }
}

/// An ordered sequence of [`GraphDelta`] operations applied atomically:
/// either every operation validates (against the running intermediate state)
/// and the batch commits, or the first invalid operation's [`DeltaError`] is
/// returned and the graph is untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    ops: Vec<GraphDelta>,
}

impl DeltaBatch {
    /// An empty batch (applying it still canonicalizes the edge order).
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Appends an [`GraphDelta::AddEdge`] operation.
    pub fn add_edge(mut self, u: NodeId, v: NodeId, w: Distance) -> Self {
        self.ops.push(GraphDelta::AddEdge { u, v, w });
        self
    }

    /// Appends a [`GraphDelta::RemoveEdge`] operation.
    pub fn remove_edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.ops.push(GraphDelta::RemoveEdge { u, v });
        self
    }

    /// Appends a [`GraphDelta::Reweight`] operation.
    pub fn reweight(mut self, u: NodeId, v: NodeId, w: Distance) -> Self {
        self.ops.push(GraphDelta::Reweight { u, v, w });
        self
    }

    /// Appends an arbitrary operation.
    pub fn push(&mut self, op: GraphDelta) {
        self.ops.push(op);
    }

    /// The operations in application order.
    pub fn ops(&self) -> &[GraphDelta] {
        &self.ops
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Every endpoint touched by any operation, deduplicated and sorted —
    /// the seed set of downstream damage analysis.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .ops
            .iter()
            .flat_map(|op| {
                let (u, v) = op.endpoints();
                [u, v]
            })
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }
}

impl FromIterator<GraphDelta> for DeltaBatch {
    fn from_iter<I: IntoIterator<Item = GraphDelta>>(iter: I) -> Self {
        DeltaBatch { ops: iter.into_iter().collect() }
    }
}

/// Structured validation failure of a [`DeltaBatch`] (the batch's position in
/// application order is reported so callers can surface the offending op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An endpoint was `>= n` (dangling endpoint).
    NodeOutOfRange {
        /// Zero-based index of the offending operation in the batch.
        op: usize,
        /// The dangling node index.
        node: usize,
        /// The graph size.
        n: usize,
    },
    /// Both endpoints name the same node.
    SelfLoop {
        /// Zero-based index of the offending operation in the batch.
        op: usize,
        /// The node with the attempted self loop.
        node: usize,
    },
    /// An insert or reweight carried weight zero (weights live in `[1, W]`).
    ZeroWeight {
        /// Zero-based index of the offending operation in the batch.
        op: usize,
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// An insert or reweight carried the [`INFINITY`] sentinel as a weight —
    /// distance arithmetic would silently absorb it.
    WeightOverflow {
        /// Zero-based index of the offending operation in the batch.
        op: usize,
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// An [`GraphDelta::AddEdge`] targeted an edge that already exists (at
    /// the point in the batch where the op applies).
    DuplicateInsert {
        /// Zero-based index of the offending operation in the batch.
        op: usize,
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A remove or reweight targeted an edge that does not exist (at the
    /// point in the batch where the op applies).
    MissingEdge {
        /// Zero-based index of the offending operation in the batch.
        op: usize,
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NodeOutOfRange { op, node, n } => {
                write!(f, "delta op {op}: node {node} out of range for graph on {n} nodes")
            }
            DeltaError::SelfLoop { op, node } => {
                write!(f, "delta op {op}: self loop at node {node}")
            }
            DeltaError::ZeroWeight { op, u, v } => {
                write!(f, "delta op {op}: edge ({u},{v}) given zero weight")
            }
            DeltaError::WeightOverflow { op, u, v } => {
                write!(f, "delta op {op}: edge ({u},{v}) given the infinity sentinel as weight")
            }
            DeltaError::DuplicateInsert { op, u, v } => {
                write!(f, "delta op {op}: edge ({u},{v}) already present")
            }
            DeltaError::MissingEdge { op, u, v } => {
                write!(f, "delta op {op}: edge ({u},{v}) not present")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Normalizes an endpoint pair to `(min, max)` raw order after validating
/// range, self-loops, and (for weighted ops) the weight domain.
fn check_op(
    op: usize,
    u: NodeId,
    v: NodeId,
    w: Option<Distance>,
    n: usize,
) -> Result<(u32, u32), DeltaError> {
    for node in [u, v] {
        if node.index() >= n {
            return Err(DeltaError::NodeOutOfRange { op, node: node.index(), n });
        }
    }
    if u == v {
        return Err(DeltaError::SelfLoop { op, node: u.index() });
    }
    if let Some(w) = w {
        if w == 0 {
            return Err(DeltaError::ZeroWeight { op, u: u.index(), v: v.index() });
        }
        if w == INFINITY {
            return Err(DeltaError::WeightOverflow { op, u: u.index(), v: v.index() });
        }
    }
    Ok(if u.raw() <= v.raw() { (u.raw(), v.raw()) } else { (v.raw(), u.raw()) })
}

impl Graph {
    /// Applies `batch` atomically and returns the post-delta graph in
    /// canonical form (edge list ascending by `(u, v)`, CSR rebuilt from that
    /// order).
    ///
    /// The result is a pure function of the final edge set: any delta
    /// sequence reaching the same edges yields a bit-identical graph, equal
    /// to a from-scratch [`GraphBuilder`] construction of the sorted final
    /// edge list.
    ///
    /// # Errors
    ///
    /// Returns the first failing operation's [`DeltaError`] (dangling
    /// endpoint, self loop, zero/overflow weight, duplicate insert, missing
    /// edge); the receiver is untouched on error.
    pub fn apply_delta(&self, batch: &DeltaBatch) -> Result<Graph, DeltaError> {
        let n = self.len();
        // A flat sorted vector beats a tree map here: the edge set is read
        // once, mutated a handful of times (batches are small), and drained
        // in order — and graphs in canonical form skip the sort entirely,
        // which keeps the serving layer's UPDATE path and the repair
        // benchmark's delta application cheap.
        let mut edges: Vec<((u32, u32), Distance)> =
            self.edges().iter().map(|e| ((e.u.raw(), e.v.raw()), e.w)).collect();
        if !edges.windows(2).all(|w| w[0].0 < w[1].0) {
            edges.sort_unstable_by_key(|&(k, _)| k);
        }
        for (i, op) in batch.ops().iter().enumerate() {
            match *op {
                GraphDelta::AddEdge { u, v, w } => {
                    let key = check_op(i, u, v, Some(w), n)?;
                    match edges.binary_search_by_key(&key, |&(k, _)| k) {
                        Ok(_) => {
                            return Err(DeltaError::DuplicateInsert {
                                op: i,
                                u: u.index(),
                                v: v.index(),
                            });
                        }
                        Err(pos) => edges.insert(pos, (key, w)),
                    }
                }
                GraphDelta::RemoveEdge { u, v } => {
                    let key = check_op(i, u, v, None, n)?;
                    match edges.binary_search_by_key(&key, |&(k, _)| k) {
                        Ok(pos) => {
                            edges.remove(pos);
                        }
                        Err(_) => {
                            return Err(DeltaError::MissingEdge {
                                op: i,
                                u: u.index(),
                                v: v.index(),
                            });
                        }
                    }
                }
                GraphDelta::Reweight { u, v, w } => {
                    let key = check_op(i, u, v, Some(w), n)?;
                    match edges.binary_search_by_key(&key, |&(k, _)| k) {
                        Ok(pos) => edges[pos].1 = w,
                        Err(_) => {
                            return Err(DeltaError::MissingEdge {
                                op: i,
                                u: u.index(),
                                v: v.index(),
                            })
                        }
                    }
                }
            }
        }
        let final_edges: Vec<Edge> = edges
            .into_iter()
            .map(|((u, v), w)| Edge { u: NodeId::new(u as usize), v: NodeId::new(v as usize), w })
            .collect();
        Ok(build_canonical(n, &final_edges))
    }
}

/// From-scratch construction of a graph from an already-sorted, already-valid
/// edge list — the canonical form [`Graph::apply_delta`] commits to.
fn build_canonical(n: usize, sorted_edges: &[Edge]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for e in sorted_edges {
        b.add_edge(e.u, e.v, e.w).expect("canonical edge list re-validates");
    }
    b.build().expect("post-delta graph has n >= 1 nodes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// A 4-node graph inserted in deliberately non-canonical order.
    fn scrambled() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(node(2), node(3), 7).unwrap();
        b.add_edge(node(0), node(1), 1).unwrap();
        b.add_edge(node(1), node(3), 4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn add_remove_reweight_roundtrip() {
        let g = scrambled();
        let batch = DeltaBatch::new()
            .add_edge(node(0), node(2), 3)
            .reweight(node(1), node(0), 9)
            .remove_edge(node(3), node(2));
        let g2 = g.apply_delta(&batch).unwrap();
        assert_eq!(g2.len(), 4);
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.edge_weight(node(0), node(1)), Some(9));
        assert_eq!(g2.edge_weight(node(0), node(2)), Some(3));
        assert_eq!(g2.edge_weight(node(1), node(3)), Some(4));
        assert_eq!(g2.edge_weight(node(2), node(3)), None);
        // Untouched receiver.
        assert_eq!(g.edge_weight(node(2), node(3)), Some(7));
    }

    #[test]
    fn canonical_order_is_sorted() {
        let g = scrambled().apply_delta(&DeltaBatch::new()).unwrap();
        let pairs: Vec<(usize, usize)> =
            g.edges().iter().map(|e| (e.u.index(), e.v.index())).collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn batch_is_atomic_on_error() {
        let g = scrambled();
        let batch = DeltaBatch::new().add_edge(node(0), node(2), 3).add_edge(node(0), node(1), 5); // duplicate insert -> whole batch rejected
        assert_eq!(g.apply_delta(&batch), Err(DeltaError::DuplicateInsert { op: 1, u: 0, v: 1 }));
        assert_eq!(g.edge_weight(node(0), node(2)), None, "no partial application");
    }

    #[test]
    fn validates_structurally() {
        let g = scrambled();
        let cases: Vec<(DeltaBatch, DeltaError)> = vec![
            (
                DeltaBatch::new().add_edge(node(0), node(4), 1),
                DeltaError::NodeOutOfRange { op: 0, node: 4, n: 4 },
            ),
            (
                DeltaBatch::new().remove_edge(node(9), node(0)),
                DeltaError::NodeOutOfRange { op: 0, node: 9, n: 4 },
            ),
            (
                DeltaBatch::new().add_edge(node(2), node(2), 1),
                DeltaError::SelfLoop { op: 0, node: 2 },
            ),
            (
                DeltaBatch::new().add_edge(node(0), node(2), 0),
                DeltaError::ZeroWeight { op: 0, u: 0, v: 2 },
            ),
            (
                DeltaBatch::new().reweight(node(0), node(1), 0),
                DeltaError::ZeroWeight { op: 0, u: 0, v: 1 },
            ),
            (
                DeltaBatch::new().add_edge(node(0), node(2), INFINITY),
                DeltaError::WeightOverflow { op: 0, u: 0, v: 2 },
            ),
            (
                DeltaBatch::new().reweight(node(0), node(2), 5),
                DeltaError::MissingEdge { op: 0, u: 0, v: 2 },
            ),
            (
                DeltaBatch::new().remove_edge(node(0), node(2)),
                DeltaError::MissingEdge { op: 0, u: 0, v: 2 },
            ),
        ];
        for (batch, want) in cases {
            assert_eq!(g.apply_delta(&batch), Err(want));
        }
    }

    #[test]
    fn intra_batch_state_is_visible() {
        // Remove then re-add the same edge in one batch: legal, and the
        // re-added weight wins.
        let g = scrambled();
        let batch = DeltaBatch::new()
            .remove_edge(node(0), node(1))
            .add_edge(node(0), node(1), 42)
            .reweight(node(0), node(1), 43);
        let g2 = g.apply_delta(&batch).unwrap();
        assert_eq!(g2.edge_weight(node(0), node(1)), Some(43));
    }

    #[test]
    fn endpoint_order_is_irrelevant() {
        let g = scrambled();
        let a = g.apply_delta(&DeltaBatch::new().add_edge(node(0), node(3), 2)).unwrap();
        let b = g.apply_delta(&DeltaBatch::new().add_edge(node(3), node(0), 2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sequence_equals_from_scratch_construction() {
        let g = scrambled();
        let b1 = DeltaBatch::new().add_edge(node(0), node(2), 3).remove_edge(node(1), node(3));
        let b2 = DeltaBatch::new().reweight(node(2), node(3), 1).add_edge(node(1), node(3), 8);
        let stepped = g.apply_delta(&b1).unwrap().apply_delta(&b2).unwrap();
        // From-scratch: the final edge set, built sorted.
        let mut fresh = GraphBuilder::new(4);
        fresh.add_edge(node(0), node(1), 1).unwrap();
        fresh.add_edge(node(0), node(2), 3).unwrap();
        fresh.add_edge(node(1), node(3), 8).unwrap();
        fresh.add_edge(node(2), node(3), 1).unwrap();
        assert_eq!(stepped, fresh.build().unwrap());
    }

    #[test]
    fn touched_nodes_dedup_sorted() {
        let batch = DeltaBatch::new()
            .add_edge(node(3), node(1), 2)
            .remove_edge(node(1), node(0))
            .reweight(node(3), node(2), 4);
        let touched: Vec<usize> = batch.touched_nodes().iter().map(|v| v.index()).collect();
        assert_eq!(touched, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(GraphDelta::AddEdge { u: node(1), v: node(2), w: 5 }.to_string(), "+1-2:5");
        assert_eq!(GraphDelta::RemoveEdge { u: node(3), v: node(4) }.to_string(), "-3-4");
        assert_eq!(GraphDelta::Reweight { u: node(0), v: node(9), w: 7 }.to_string(), "~0-9:7");
        let e = DeltaError::WeightOverflow { op: 2, u: 1, v: 3 };
        assert!(e.to_string().contains("infinity sentinel"));
    }
}
