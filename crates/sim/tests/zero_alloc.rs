//! Proves the acceptance criterion of the hot-path overhaul: a steady-state
//! `exchange_into` performs **zero heap allocations** per call.
//!
//! A counting global allocator tallies every `alloc`/`realloc`; after a warm-up
//! call (which sizes the scratch arenas, the inbox arena, and interns the phase
//! label) repeated exchanges with the same shape must not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hybrid_graph::generators::path;
use hybrid_graph::NodeId;
use hybrid_sim::{Envelope, FlatInboxes, HybridConfig, HybridNet};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Refills `outbox` with a fixed all-to-some pattern (stays within existing
/// capacity after the first fill).
fn fill_outbox(outbox: &mut Vec<Envelope<u64>>, n: usize, round: u64) {
    for s in 0..n {
        for j in 0..3 {
            let d = (s * 5 + j * 7 + 1) % n;
            outbox.push(Envelope::new(NodeId::new(s), NodeId::new(d), round * 1000 + j as u64));
        }
    }
}

#[test]
fn steady_state_exchange_into_is_allocation_free() {
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let mut outbox: Vec<Envelope<u64>> = Vec::new();
    let mut inbox: FlatInboxes<u64> = FlatInboxes::new();

    // Warm-up: grows outbox/arena capacity, sizes the permutation scratch,
    // interns the phase label, and sizes the receive-load histogram.
    for round in 0..3 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
    }

    let before = allocations();
    for round in 3..103 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
        assert_eq!(inbox.len(), 64 * 3);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state exchange_into must not allocate (got {} allocations over 100 calls)",
        after - before
    );
    assert_eq!(net.rounds(), 103);
}

#[test]
fn steady_state_drain_round_is_allocation_free() {
    // The drain loop's per-round work (pacing bookkeeping + exchange_into +
    // arena drain) must also be allocation-free; the nested-Vec result of the
    // public `drain_queues` is the only allocating part, so this test drives
    // the same building blocks the way `drain_queues`'s inner loop does.
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let mut outbox: Vec<Envelope<u64>> = Vec::new();
    let mut inbox: FlatInboxes<u64> = FlatInboxes::new();
    let mut sink: Vec<(usize, NodeId, u64)> = Vec::with_capacity(64 * 4);

    for round in 0..3 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("drain", &mut outbox, &mut inbox).expect("exchange");
        sink.clear();
        inbox.drain_into(|dst, (src, msg)| sink.push((dst, src, msg)));
    }

    let before = allocations();
    for round in 3..53 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("drain", &mut outbox, &mut inbox).expect("exchange");
        sink.clear();
        inbox.drain_into(|dst, (src, msg)| sink.push((dst, src, msg)));
        assert_eq!(sink.len(), 64 * 3);
    }
    let after = allocations();
    assert_eq!(after - before, 0, "steady-state drain round must not allocate");
}
