//! Experiment runner: regenerates every table of EXPERIMENTS.md and, with
//! `--json`, the machine-readable `BENCH_apsp.json` perf trajectory.
//!
//! ```sh
//! cargo run --release -p hybrid-bench --bin experiments -- all
//! cargo run --release -p hybrid-bench --bin experiments -- e2 e5
//! cargo run --release -p hybrid-bench --bin experiments -- --small all
//! cargo run --release -p hybrid-bench --bin experiments -- --json
//! cargo run --release -p hybrid-bench --bin experiments -- --small --json
//! ```
//!
//! `--json` times the E2 APSP workload (Theorem 1.1, the SODA'20 baseline,
//! and the sequential reference) and writes `BENCH_apsp.json` to the current
//! directory; when given alone it runs only that sweep.

use hybrid_bench::experiments as ex;
use hybrid_bench::{json, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--small") { Scale::Small } else { Scale::Full };
    let emit_json = args.iter().any(|a| a == "--json");
    let wanted: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    type Runner = fn(Scale) -> hybrid_bench::table::Table;
    // `--json` alone means "just the JSON sweep"; any experiment id (or `all`)
    // still runs the tables.
    let all = wanted.contains(&"all") || (wanted.is_empty() && !emit_json);
    let runs: Vec<(&str, Runner)> = vec![
        ("e1", ex::e1_token_routing),
        ("e2", ex::e2_apsp),
        ("e3", ex::e3_kssp),
        ("e4", ex::e4_sssp),
        ("e5", ex::e5_diameter),
        ("e6", ex::e6_kssp_lower_bound),
        ("e7", ex::e7_diameter_lower_bound),
        ("e8", ex::e8_helper_sets),
        ("e9", ex::e9_ruling_sets),
        ("e10", ex::e10_skeletons),
        ("e11", ex::e11_congestion),
        ("e12", ex::e12_clique_sim),
        ("e13", ex::e13_xi_ablation),
        ("e14", ex::e14_mu_ablation),
        ("e15", ex::e15_gamma_ablation),
    ];
    for (id, f) in runs {
        if all || wanted.contains(&id) {
            eprintln!("running {id}...");
            f(scale).print();
        }
    }
    if emit_json {
        eprintln!("running APSP wall-clock sweep for BENCH_apsp.json...");
        let records = ex::bench_apsp_records(scale);
        let scale_name = match scale {
            Scale::Small => "small",
            Scale::Full => "full",
        };
        let doc = json::render(scale_name, &records);
        let path = "BENCH_apsp.json";
        std::fs::write(path, &doc).expect("write BENCH_apsp.json");
        eprintln!("wrote {path}:");
        print!("{doc}");
    }
}
