//! The local communication graph `G = (V, E)`.
//!
//! Graphs are undirected and weighted (`w : E → [W]`, §1.3 of the paper). The
//! representation is a compact CSR adjacency structure, built once through
//! [`GraphBuilder`] and immutable afterwards — the HYBRID model's topology does not
//! change during an execution, and the simulator shares one [`Graph`] across all
//! per-node state.

use std::fmt;

use crate::dist::Distance;
use crate::ids::NodeId;

/// Errors raised while constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The graph size.
        n: usize,
    },
    /// Self loops are not allowed in the model.
    SelfLoop {
        /// The node with the attempted self loop.
        node: usize,
    },
    /// Edge weights must lie in `[1, W]` for some `W ≥ 1`; zero encodes nothing.
    ZeroWeight {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// The same undirected edge was added twice (possibly with different weights).
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A graph on zero nodes cannot be built.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph on {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::ZeroWeight { u, v } => write!(f, "edge ({u},{v}) has zero weight"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u},{v})"),
            GraphError::Empty => write!(f, "graph must have at least one node"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected edge of the local graph, as stored in [`Graph::edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Weight in `[1, W]`.
    pub w: Distance,
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use hybrid_graph::{GraphBuilder, NodeId};
/// # fn main() -> Result<(), hybrid_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1), 1)?;
/// b.add_edge(NodeId::new(1), NodeId::new(2), 4)?;
/// let g = b.build()?;
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    seen: std::collections::HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes with IDs `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new(), seen: std::collections::HashSet::new() }
    }

    /// Number of nodes the graph will have.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the builder targets a zero-node graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, `u == v`, `w == 0`, or the
    /// edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Distance) -> Result<(), GraphError> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u.index(), n: self.n });
        }
        if v.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v.index(), n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u.index() });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { u: u.index(), v: v.index() });
        }
        let key = if u.raw() <= v.raw() { (u.raw(), v.raw()) } else { (v.raw(), u.raw()) };
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u: u.index(), v: v.index() });
        }
        let (a, b) = if u.raw() <= v.raw() { (u, v) } else { (v, u) };
        self.edges.push(Edge { u: a, v: b, w });
        Ok(())
    }

    /// Adds `{u, v}` only if it is not present yet; returns whether it was added.
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::add_edge`] except that duplicates are reported as
    /// `Ok(false)` instead of an error.
    pub fn add_edge_if_absent(
        &mut self,
        u: NodeId,
        v: NodeId,
        w: Distance,
    ) -> Result<bool, GraphError> {
        match self.add_edge(u, v, w) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Returns whether the undirected edge `{u, v}` has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u.raw() <= v.raw() { (u.raw(), v.raw()) } else { (v.raw(), u.raw()) };
        self.seen.contains(&key)
    }

    /// Finalizes the CSR structure.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for `n == 0`.
    pub fn build(self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        let n = self.n;
        let mut degree = vec![0usize; n];
        for e in &self.edges {
            degree[e.u.index()] += 1;
            degree[e.v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &degree {
            let last = *offsets.last().expect("offsets non-empty");
            offsets.push(last + d);
        }
        let m2 = offsets[n];
        let mut targets = vec![NodeId::new(0); m2];
        let mut weights = vec![0u64; m2];
        let mut cursor = offsets.clone();
        for e in &self.edges {
            let cu = cursor[e.u.index()];
            targets[cu] = e.v;
            weights[cu] = e.w;
            cursor[e.u.index()] += 1;
            let cv = cursor[e.v.index()];
            targets[cv] = e.u;
            weights[cv] = e.w;
            cursor[e.v.index()] += 1;
        }
        let max_weight = self.edges.iter().map(|e| e.w).max().unwrap_or(1);
        Ok(Graph { n, offsets, targets, weights, edges: self.edges, max_weight })
    }
}

/// An immutable, undirected, weighted graph in CSR form.
///
/// This is the local communication topology `G` of the HYBRID model. All reference
/// algorithms and the simulator operate on shared references to it.
///
/// Equality is *structural and order-sensitive*: two graphs compare equal only
/// if their edge lists (and hence CSR layouts) match entry for entry — the
/// bit-identity notion the delta canonicalization guarantee is stated in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<Distance>,
    edges: Vec<Edge>,
    max_weight: Distance,
}

impl Graph {
    /// Number of nodes `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has zero nodes (never true for a built graph).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Largest edge weight `W` (1 for an edgeless graph).
    pub fn max_weight(&self) -> Distance {
        self.max_weight
    }

    /// Whether the graph is unweighted in the paper's sense (`W = 1`).
    pub fn is_unweighted(&self) -> bool {
        self.max_weight == 1
    }

    /// The undirected edge list (each edge once, `u < v`).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Approximate heap footprint of the CSR structure in bytes (lengths, not
    /// capacities) — the sizing input for byte-budgeted caches.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.len() * size_of::<usize>()
            + self.targets.len() * size_of::<NodeId>()
            + self.weights.len() * size_of::<Distance>()
            + self.edges.len() * size_of::<Edge>()
    }

    /// Iterates over `(neighbor, weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Distance)> + '_ {
        let lo = self.offsets[v.index()];
        let hi = self.offsets[v.index() + 1];
        self.targets[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// Degree of `v` in `G`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree of the graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|i| self.offsets[i + 1] - self.offsets[i]).max().unwrap_or(0)
    }

    /// All node IDs `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        crate::ids::node_ids(self.n)
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).any(|(x, _)| x == v)
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Distance> {
        self.neighbors(u).find(|&(x, _)| x == v).map(|(_, w)| w)
    }

    /// Whether `G` is connected (the paper assumes a connected local graph).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for (u, _) in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n
    }

    /// `⌈log2 n⌉`, the paper's ubiquitous `⌈log n⌉` (at least 1).
    pub fn log2_ceil(&self) -> usize {
        log2_ceil(self.n)
    }
}

/// `⌈log2 x⌉` for `x ≥ 1`, clamped to at least 1 (the paper's message-count budget
/// `O(log n)` never degenerates to zero).
pub fn log2_ceil(x: usize) -> usize {
    if x <= 2 {
        1
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2), 2).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(0), 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_csr() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.max_weight(), 3);
        assert!(!g.is_unweighted());
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        for e in g.edges() {
            assert_eq!(g.edge_weight(e.u, e.v), Some(e.w));
            assert_eq!(g.edge_weight(e.v, e.u), Some(e.w));
        }
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(NodeId::new(1), NodeId::new(1), 1),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(NodeId::new(0), NodeId::new(1), 0),
            Err(GraphError::ZeroWeight { u: 0, v: 1 })
        );
    }

    #[test]
    fn rejects_duplicate_in_either_direction() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        assert_eq!(
            b.add_edge(NodeId::new(1), NodeId::new(0), 5),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
        assert!(!b.add_edge_if_absent(NodeId::new(0), NodeId::new(1), 1).unwrap());
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(NodeId::new(0), NodeId::new(2), 1),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(GraphBuilder::new(0).build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 1).unwrap();
        assert!(!b.build().unwrap().is_connected());
    }

    #[test]
    fn isolated_node_graph() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_weight(), 1);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 1);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn error_display() {
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("duplicate"));
    }
}
