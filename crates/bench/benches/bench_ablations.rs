//! Criterion wall-clock wrapper for the ablation experiments E13-E15.

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::{e13_xi_ablation, e14_mu_ablation, e15_gamma_ablation};
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_ablations");
    group.sample_size(10);
    group.bench_function("e13_small", |b| b.iter(|| e13_xi_ablation(Scale::Small)));
    group.bench_function("e14_small", |b| b.iter(|| e14_mu_ablation(Scale::Small)));
    group.bench_function("e15_small", |b| b.iter(|| e15_gamma_ablation(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
